"""Cost-based plan selection over the physical operator library (Section 5).

The optimizer works in three steps:

1. :func:`~repro.optimizer.logical.build_logical_plan` restates the analyzed
   query as a logical tree;
2. the logical shape is expanded into every *eligible* physical candidate —
   alternative compositions of the operator library (exhaustive scan,
   sampling, specialized rewrite, control variates, importance ranking,
   filter cascades);
3. each candidate is priced from the statistics catalog in **estimated
   detector calls plus specialization training cost**, and the cheapest wins.

Two deliberate asymmetries keep planning honest:

* The *adaptive* candidate of each query class (Algorithm 1's accuracy gate,
  the scrubbing fallback rule) is listed first and priced at the best of the
  strategies it can choose at runtime, because that is what it will actually
  do — it therefore wins ties against the forced variants it subsumes.
* A forced variant must beat the adaptive default by a clear margin
  (the ``SELECTION_TOLERANCE_*`` constants) before it is chosen over it:
  catalog statistics are held-out estimates, and the adaptive plans are
  robust to their errors in a way a forced strategy is not.

On the paper's target workloads (rare events, specializable classes) the
winner is therefore the same plan the historical rules produced — results
included, bit for bit.  When the statistics clearly contradict the rules
(e.g. scrubbing an event so common that a sequential scan crosses the limit
in a handful of detections, while ranking would first train a specialized NN
over the whole labeled set), the cheaper candidate wins instead; that is the
point of having a cost model.

``QueryHints.force_plan`` bypasses the choice entirely and picks a candidate
by name — the escape hatch for benchmarks and for users who know better.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.hints import NO_HINTS, QueryHints, require_hints
from repro.core.config import AggregateMethod, BlazeItConfig
from repro.metrics.runtime import StandardCosts
from repro.core.results import PlanCandidateSummary, PlanExplanation
from repro.errors import PlanningError, UnknownUDFError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
)
from repro.catalog.statistics import StatisticsCatalog, VideoStatistics
from repro.optimizer.aggregates import (
    ASSUMED_CV_CORRELATION,
    AggregateQueryPlan,
    sampling_calls_estimate,
)
from repro.optimizer.base import CostEstimate, PhysicalPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.logical import LogicalPlan, build_logical_plan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.udf.registry import UDFRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detection.base import ObjectDetector


def _detector_picklable(detector: "ObjectDetector") -> bool:
    """Whether a detector can cross the spawn boundary to process workers."""
    import pickle

    try:
        pickle.dumps(detector)
    except Exception:
        return False
    return True


#: Relative + absolute margin a forced variant must clear to displace the
#: adaptive default candidate (see the module docstring).
SELECTION_TOLERANCE_RELATIVE = 0.10
SELECTION_TOLERANCE_SECONDS = 0.5

#: Expected detector verifications down an importance ranking, in multiples
#: of the limit: an informative ranking concentrates true positives at the
#: front, so verification touches roughly the limit plus overshoot — far
#: fewer frames than a sequential scan needs to cross the same number of
#: events (``limit / event_rate``).  Capped at the sequential figure: an
#: uninformative ranking degrades to random order, never below it.
RANKING_OVERSHOOT = 2

#: Modeled per-worker startup of the two parallel backends, expressed in the
#: cost model's currency (detector-equivalent seconds).  Threads are nearly
#: free; a spawned process pays a fresh interpreter plus the numpy/repro
#: imports before its first chunk — the figure is calibrated from measured
#: wall cost (see ``benchmarks/bench_parallel.py``).
THREAD_STARTUP_SECONDS = 0.05
PROCESS_STARTUP_SECONDS = 2.0

#: Predicted-speedup margin a parallel configuration must clear before the
#: model picks it over sequential execution: startup and speculation
#: estimates are rough, and a sequential run is never wrong — only slow.
PARALLEL_MARGIN = 1.3


@dataclass(frozen=True)
class ParallelismDecision:
    """The optimizer's verdict on how to execute one plan in parallel."""

    #: ``"sequential"``, ``"threads"`` or ``"processes"``.
    backend: str
    #: Worker count (``1`` for sequential).
    workers: int
    #: Human-readable justification, surfaced by ``explain()``.
    reason: str
    #: Modeled detector seconds of the sequential execution.
    sequential_seconds: float = 0.0
    #: Modeled seconds of the chosen configuration (equals
    #: ``sequential_seconds`` when sequential wins).
    parallel_seconds: float = 0.0
    #: ``"cost_model"`` normally; ``"fallback"`` when no statistics existed
    #: and the plan-level profitability gate decided instead.
    source: str = "cost_model"

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def describe(self) -> str:
        label = (
            "sequential"
            if not self.parallel
            else f"{self.backend} x {self.workers}"
        )
        return f"{label} [{self.source}] — {self.reason}"


class ParallelismModel:
    """Prices parallel execution: startup + speculation waste vs detector work.

    The parallel engine overlaps *detector* latency across shard workers;
    everything else a plan does (training, inference, filters) runs on the
    driver regardless.  So the model compares the plan's expected detector
    seconds — taken from the cost estimate the optimizer already produced
    when it chose the plan — against ``startup x k`` plus the per-shard share
    of useful work *and* speculative waste: workers compute the announced
    order eagerly, so a plan that consumes only a short prefix (an
    importance-ranked scrub crossing its LIMIT early) pays for prefetched
    frames it never reads.  Cheap importance-ranked scans therefore lose to
    sequential execution on principle, not by a blanket rule.

    Backend choice follows the detector: threads when it releases the GIL
    during its latency (the normal, well-behaved case — process startup is
    two orders of magnitude dearer), processes when it declares itself
    ``gil_bound`` and the context can be exported to spawned workers.
    """

    def __init__(
        self,
        thread_startup_seconds: float = THREAD_STARTUP_SECONDS,
        process_startup_seconds: float = PROCESS_STARTUP_SECONDS,
        margin: float = PARALLEL_MARGIN,
    ) -> None:
        self.thread_startup_seconds = thread_startup_seconds
        self.process_startup_seconds = process_startup_seconds
        self.margin = margin

    def decide(
        self,
        plan: PhysicalPlan,
        stats: VideoStatistics,
        num_frames: int,
        requested: int,
        batch_size: int,
        window_chunks: int,
        gil_bound: bool = False,
        process_ok: bool = True,
        backend_constraint: str | None = None,
    ) -> ParallelismDecision:
        """Choose ``{sequential, threads x k, processes x k}`` for one plan.

        ``requested`` is the routed worker count (hints or engine config);
        the model may choose fewer workers, never more.
        ``backend_constraint`` (from ``QueryHints.backend``) restricts the
        choice to one backend without forcing parallelism itself.
        """
        if requested < 2:
            return ParallelismDecision(
                backend="sequential",
                workers=1,
                reason="parallelism not requested",
            )
        cost = plan.planned_cost
        if cost is None:
            cost = plan.estimate_cost(num_frames, stats)
        useful_calls = min(max(int(cost.detector_calls), 0), num_frames)
        per_call = stats.detector_seconds_per_call
        sequential_seconds = useful_calls * per_call

        backends = self._backend_order(gil_bound, process_ok, backend_constraint)
        best: tuple[float, str, int] | None = None
        for k in self._worker_counts(requested):
            waste_calls = min(
                max(0, num_frames - useful_calls),
                k * window_chunks * batch_size,
            )
            for backend in backends:
                # A GIL-bound detector serializes thread workers: they pay
                # startup and speculation with no overlap at all.
                overlap = 1 if (backend == "threads" and gil_bound) else k
                startup = (
                    self.thread_startup_seconds
                    if backend == "threads"
                    else self.process_startup_seconds
                )
                seconds = (
                    startup * k + (useful_calls + waste_calls) * per_call / overlap
                )
                if best is None or seconds < best[0]:
                    best = (seconds, backend, k)
        if best is not None and sequential_seconds >= self.margin * best[0]:
            seconds, backend, k = best
            return ParallelismDecision(
                backend=backend,
                workers=k,
                reason=(
                    f"{useful_calls} expected detector calls amortize "
                    f"{k} x {backend} startup "
                    f"({sequential_seconds:.1f}s -> {seconds:.1f}s modeled)"
                ),
                sequential_seconds=sequential_seconds,
                parallel_seconds=seconds,
            )
        return ParallelismDecision(
            backend="sequential",
            workers=1,
            reason=(
                f"{useful_calls} expected detector calls don't amortize "
                "worker startup and speculative prefetch"
                + (
                    f" (best parallel config modeled {best[0]:.1f}s vs "
                    f"{sequential_seconds:.1f}s sequential)"
                    if best is not None
                    else ""
                )
            ),
            sequential_seconds=sequential_seconds,
            parallel_seconds=sequential_seconds,
        )

    def _backend_order(
        self, gil_bound: bool, process_ok: bool, constraint: str | None
    ) -> list[str]:
        order = ["processes", "threads"] if gil_bound else ["threads", "processes"]
        if not process_ok:
            order = [b for b in order if b != "processes"]
        if constraint is not None:
            order = [b for b in order if b == constraint]
        return order

    def _worker_counts(self, requested: int) -> list[int]:
        counts = []
        k = requested
        while k >= 2:
            counts.append(k)
            k //= 2
        return counts


class PlanCandidate:
    """One priced physical alternative for a query."""

    def __init__(
        self,
        name: str,
        plan: PhysicalPlan,
        cost: CostEstimate,
        reason: str = "",
    ) -> None:
        self.name = name
        self.plan = plan
        self.cost = cost
        self.reason = reason

    def __repr__(self) -> str:
        return f"PlanCandidate({self.name!r}, {self.cost.describe()})"

    def summary(self, chosen: bool) -> PlanCandidateSummary:
        """The explanation-facing summary of this candidate."""
        return PlanCandidateSummary(
            name=self.name,
            detector_calls=self.cost.detector_calls,
            total_seconds=self.cost.total_seconds,
            chosen=chosen,
            reason=self.reason,
        )


class CostBasedOptimizer:
    """Chooses the cheapest eligible physical plan for an analyzed query."""

    def __init__(
        self,
        udf_registry: UDFRegistry,
        catalog: StatisticsCatalog | None = None,
        config: BlazeItConfig | None = None,
        index_lookup: Callable[[str], bool] | None = None,
    ) -> None:
        self.udf_registry = udf_registry
        self.catalog = catalog if catalog is not None else StatisticsCatalog()
        self.config = config if config is not None else BlazeItConfig()
        #: Predicate answering "does a committed persistent index cover this
        #: video?" (the engine passes its index store's lookup).  When it
        #: answers yes, every candidate's detector work is index-served —
        #: decoded from memory-mapped segments or skipped outright by the
        #: range sketches — so detector calls and seconds are repriced to
        #: zero (training/inference/filter buckets are unaffected).
        self.index_lookup = index_lookup

    # -- public surface ------------------------------------------------------------

    def plan(self, spec: QuerySpec, hints: QueryHints | None = None) -> PhysicalPlan:
        """Build the physical plan for ``spec``.

        Parameters
        ----------
        spec:
            Analyzed query specification.
        hints:
            Typed execution hints (see :class:`~repro.api.hints.QueryHints`).
            ``hints.force_plan`` selects a candidate by name instead of by
            cost.
        """
        require_hints(hints)
        hints = hints or NO_HINTS
        self._validate_udfs(spec)
        candidates = self.candidates(spec, hints)
        if hints.force_plan is not None:
            chosen = self._forced(candidates, hints.force_plan)
        elif self._config_forces_strategy(spec):
            chosen = candidates[0]
        else:
            chosen = self.choose(candidates, self.statistics_for(spec))
        # Stamp the price the plan was chosen at: the parallelism model (and
        # anyone else reasoning about the plan post-choice) reads it so the
        # expected detector work agrees with the selection itself.
        chosen.plan.planned_cost = chosen.cost
        return chosen.plan

    def logical_plan(self, spec: QuerySpec) -> LogicalPlan:
        """The logical plan the physical enumeration starts from."""
        return build_logical_plan(spec)

    def statistics_for(self, spec: QuerySpec) -> VideoStatistics | None:
        """Catalog statistics for the query's video, if registered."""
        return self.catalog.get(spec.video)

    def candidates(
        self,
        spec: QuerySpec,
        hints: QueryHints | None = None,
        num_frames: int | None = None,
    ) -> list[PlanCandidate]:
        """Every eligible physical candidate for ``spec``, default first.

        ``num_frames`` sizes the costing when the statistics catalog has no
        entry for the query's video (explanations pass the store's frame
        count); with catalog statistics it is taken from them.
        """
        require_hints(hints)
        hints = hints or NO_HINTS
        logical = self.logical_plan(spec)
        stats = self.statistics_for(spec)
        if stats is not None:
            num_frames = stats.num_frames
        elif num_frames is None:
            num_frames = 0
        if isinstance(spec, AggregateQuerySpec):
            candidates = self._aggregate_candidates(
                spec, logical, hints, stats, num_frames
            )
        elif isinstance(spec, ScrubbingQuerySpec):
            candidates = self._scrubbing_candidates(spec, hints, stats, num_frames)
        elif isinstance(spec, SelectionQuerySpec):
            candidates = self._selection_candidates(spec, hints, stats, num_frames)
        elif isinstance(spec, ExactQuerySpec):
            candidates = self._exact_candidates(spec, hints, stats, num_frames)
        else:
            raise PlanningError(
                f"no plan rule for query spec of type {type(spec).__name__}"
            )
        if self._index_covers(spec, hints):
            candidates = [self._index_priced(candidate) for candidate in candidates]
        return candidates

    def choose(
        self, candidates: list[PlanCandidate], stats: VideoStatistics | None
    ) -> PlanCandidate:
        """Pick the cheapest candidate, with the adaptive-default preference.

        Without statistics there is nothing to price, so the default (first)
        candidate — the historical rule-based mapping — is chosen outright.
        """
        if stats is None or len(candidates) == 1:
            return candidates[0]
        best = min(candidate.cost.total_seconds for candidate in candidates)
        threshold = best * (1.0 + SELECTION_TOLERANCE_RELATIVE) + (
            SELECTION_TOLERANCE_SECONDS
        )
        for candidate in candidates:
            if candidate.cost.total_seconds <= threshold:
                return candidate
        return candidates[0]  # pragma: no cover - threshold >= best is total

    def explain_plan(
        self,
        spec: QuerySpec,
        plan: PhysicalPlan,
        hints: QueryHints | None,
        num_frames: int,
        detector: "ObjectDetector | None" = None,
    ) -> PlanExplanation:
        """Structured explanation of ``plan``, with per-operator costs.

        ``detector`` (when the caller has one — sessions pass the engine's)
        lets the parallelism verdict account for GIL behaviour and process
        exportability; without it the well-behaved defaults are assumed.
        """
        hints = hints or NO_HINTS
        stats = self.statistics_for(spec)
        candidates = self.candidates(spec, hints, num_frames=num_frames)
        if hints.force_plan is not None:
            chosen = self._forced(candidates, hints.force_plan).name
        elif self._config_forces_strategy(spec):
            chosen = candidates[0].name
        else:
            chosen = self.choose(candidates, stats).name
        estimated_calls = plan.estimate_detector_calls(num_frames, stats)
        if self._index_covers(spec, hints):
            # Sketch-tightened estimate: with a committed index every
            # detection is served from persisted segments, so the bound on
            # charged detector calls collapses to zero.
            estimated_calls = 0
        return PlanExplanation(
            kind=spec.kind.value,
            plan_summary=plan.describe(),
            operators=plan.operator_tree(num_frames=num_frames, stats=stats),
            estimated_detector_calls=estimated_calls,
            hints_applied=hints.describe(),
            candidates=tuple(
                candidate.summary(chosen=candidate.name == chosen)
                for candidate in candidates
            ),
            parallelism=self._explain_parallelism(
                plan, hints, stats, num_frames, detector
            ),
        )

    def _explain_parallelism(
        self,
        plan: PhysicalPlan,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
        detector: "ObjectDetector | None",
    ) -> str:
        """The routed-parallelism verdict, as ``explain()`` surfaces it."""
        from repro.core.events import DEFAULT_BATCH_SIZE
        from repro.parallel.executor import DEFAULT_WINDOW_CHUNKS

        requested = (
            hints.parallelism
            if hints.parallelism is not None
            else self.config.parallelism
        )
        if requested < 2:
            return ParallelismDecision(
                backend="sequential", workers=1, reason="parallelism not requested"
            ).describe()
        if stats is None:
            return ParallelismDecision(
                backend="sequential",
                workers=1,
                reason=(
                    "no catalog statistics to price: the plan-level "
                    "profitability gate decides at execution"
                ),
                source="fallback",
            ).describe()
        batch_size = (
            hints.batch_size if hints.batch_size is not None else DEFAULT_BATCH_SIZE
        )
        return ParallelismModel().decide(
            plan=plan,
            stats=stats,
            num_frames=num_frames,
            requested=requested,
            batch_size=batch_size,
            window_chunks=DEFAULT_WINDOW_CHUNKS,
            gil_bound=detector.gil_bound if detector is not None else False,
            process_ok=detector is None or _detector_picklable(detector),
            backend_constraint=hints.backend,
        ).describe()

    # -- shared pieces -------------------------------------------------------------

    def _index_covers(self, spec: QuerySpec, hints: QueryHints) -> bool:
        """Whether a persistent index serves this query's detector work.

        True only when the engine wired an index store in, the hint set does
        not opt out (``use_index=False``), and the store holds a committed
        generation for the query's video under the current detector identity.
        """
        if self.index_lookup is None or hints.use_index is False:
            return False
        return bool(self.index_lookup(spec.video))

    def _index_priced(self, candidate: PlanCandidate) -> PlanCandidate:
        """Reprice one candidate for index-served detections.

        Every detection the plan would charge is answered from the persistent
        index (memory-mapped segment decode, or a sketch-proven empty frame),
        so detector calls and seconds drop to zero.  Training, inference and
        filter costs still apply: the specialized pipeline and filter
        cascades run regardless of where detections come from.
        """
        cost = CostEstimate(
            detector_calls=0,
            detector_seconds=0.0,
            training_seconds=candidate.cost.training_seconds,
            inference_seconds=candidate.cost.inference_seconds,
            filter_seconds=candidate.cost.filter_seconds,
        )
        suffix = "index-served detections: detector cost repriced to zero"
        reason = f"{candidate.reason} [{suffix}]" if candidate.reason else suffix
        return PlanCandidate(candidate.name, candidate.plan, cost, reason=reason)

    def _validate_udfs(self, spec: QuerySpec) -> None:
        predicates = getattr(spec, "udf_predicates", [])
        for predicate in predicates:
            if predicate.udf_name not in self.udf_registry:
                raise UnknownUDFError(
                    f"query uses unregistered UDF {predicate.udf_name!r}"
                )

    def _config_forces_strategy(self, spec: QuerySpec) -> bool:
        """Whether the engine configuration pins this query's strategy.

        A non-``AUTO`` ``aggregate_method`` is an explicit user override
        (the Figure 4/5 benchmark knob): cost-based choice is bypassed and
        the default candidate — which carries that method — is used as-is.
        """
        return (
            isinstance(spec, AggregateQuerySpec)
            and self._default_aggregate_method() is not None
        )

    def _forced(
        self, candidates: list[PlanCandidate], name: str
    ) -> PlanCandidate:
        for candidate in candidates:
            if candidate.name == name:
                return candidate
        valid = ", ".join(candidate.name for candidate in candidates)
        raise PlanningError(
            f"force_plan={name!r} names no eligible candidate for this query; "
            f"eligible candidates: {valid}"
        )

    def _detector_cost(
        self, calls: int, stats: VideoStatistics | None
    ) -> CostEstimate:
        if stats is not None:
            seconds = stats.detector_seconds(calls)
        else:
            # No catalog entry: price at the paper's Mask R-CNN rate so
            # explanations still show meaningful magnitudes.
            seconds = calls * StandardCosts.MASK_RCNN.seconds_per_call
        return CostEstimate(detector_calls=calls, detector_seconds=seconds)

    # -- per-class enumeration -----------------------------------------------------

    def _default_aggregate_method(self) -> AggregateMethod | None:
        """The method the default candidate will actually run.

        The engine configuration can force a strategy for every aggregate
        query (the Figure 4/5 benchmark knob); baking it into the default
        plan keeps that plan's cost estimates bounding what execution will
        really do.  ``AUTO`` stays ``None``: Algorithm 1 decides at runtime.
        """
        if self.config.aggregate_method == AggregateMethod.AUTO:
            return None
        return self.config.aggregate_method

    def _aggregate_candidates(
        self,
        spec: AggregateQuerySpec,
        logical: LogicalPlan,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        exact_cost = self._detector_cost(num_frames, stats)
        default_method = self._default_aggregate_method()
        if not logical.approximate:
            return [
                PlanCandidate(
                    "exact",
                    AggregateQueryPlan(spec, hints=hints),
                    exact_cost,
                    reason="no error tolerance (or COUNT DISTINCT): "
                    "every frame must be detected",
                )
            ]

        error_tolerance = spec.error_tolerance
        assert error_tolerance is not None  # guaranteed by logical.approximate
        class_stats = stats.class_stats(spec.object_class) if stats else None
        sigma = class_stats.count_std if class_stats is not None else 0.0
        value_range = (
            stats.value_range(spec.object_class) if stats is not None else 2.0
        )
        aqp_calls = sampling_calls_estimate(
            num_frames, sigma, error_tolerance, spec.confidence, value_range
        )
        aqp_cost = self._detector_cost(aqp_calls, stats)

        specializable = (
            class_stats is not None
            and class_stats.training_positives >= self.config.min_training_positives
        )
        rewrite_cost = aqp_cost
        cv_cost = aqp_cost
        if specializable and stats is not None:
            training = stats.specialized_training_seconds()
            inference = stats.specialized_inference_seconds(num_frames)
            rewrite_cost = CostEstimate(
                detector_calls=0,
                training_seconds=training,
                inference_seconds=inference,
            )
            residual_sigma = sigma * math.sqrt(1.0 - ASSUMED_CV_CORRELATION**2)
            cv_calls = sampling_calls_estimate(
                num_frames,
                residual_sigma,
                error_tolerance,
                spec.confidence,
                value_range,
            )
            cv_cost = CostEstimate(
                detector_calls=cv_calls,
                detector_seconds=stats.detector_seconds(cv_calls),
                training_seconds=training,
                inference_seconds=inference,
            )

        # The default candidate runs whatever the engine configuration forces
        # (normally AUTO); its price reflects that actual behaviour.
        if default_method == AggregateMethod.EXACT:
            auto_cost = exact_cost
            auto_reason = "engine configuration forces the exact scan"
        elif default_method == AggregateMethod.NAIVE_AQP:
            auto_cost = aqp_cost
            auto_reason = "engine configuration forces adaptive sampling"
        elif default_method == AggregateMethod.SPECIALIZED_REWRITE:
            auto_cost = rewrite_cost
            auto_reason = "engine configuration forces the specialized rewrite"
        elif default_method == AggregateMethod.CONTROL_VARIATES:
            auto_cost = cv_cost
            auto_reason = "engine configuration forces control variates"
        elif specializable and stats is not None:
            # The adaptive plan runs whichever branch its accuracy gate
            # admits; price it at the better of the two.
            auto_cost = min(
                (rewrite_cost, cv_cost), key=lambda cost: cost.total_seconds
            )
            auto_reason = (
                "Algorithm 1: bootstrap gate picks rewrite or "
                "control variates at runtime"
            )
        else:
            auto_cost = aqp_cost
            auto_reason = "too few training positives: adaptive sampling"
        candidates: list[PlanCandidate] = [
            PlanCandidate(
                "auto",
                AggregateQueryPlan(spec, hints=hints, method=default_method),
                auto_cost,
                reason=auto_reason,
            )
        ]
        candidates.append(
            PlanCandidate(
                "exact",
                AggregateQueryPlan(spec, hints=hints, method=AggregateMethod.EXACT),
                exact_cost,
                reason="detection on every frame",
            )
        )
        candidates.append(
            PlanCandidate(
                "naive_aqp",
                AggregateQueryPlan(
                    spec, hints=hints, method=AggregateMethod.NAIVE_AQP
                ),
                aqp_cost,
                reason="uniform sampling, CLT stop",
            )
        )
        if specializable and stats is not None:
            candidates.append(
                PlanCandidate(
                    "specialized_rewrite",
                    AggregateQueryPlan(
                        spec, hints=hints, method=AggregateMethod.SPECIALIZED_REWRITE
                    ),
                    rewrite_cost,
                    reason="specialized NN replaces the detector outright",
                )
            )
            candidates.append(
                PlanCandidate(
                    "control_variates",
                    AggregateQueryPlan(
                        spec, hints=hints, method=AggregateMethod.CONTROL_VARIATES
                    ),
                    cv_cost,
                    reason="variance-reduced sampling, NN auxiliary",
                )
            )
        return candidates

    def _scrubbing_candidates(
        self,
        spec: ScrubbingQuerySpec,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        importance = ScrubbingQueryPlan(spec, hints=hints)
        exhaustive = ScrubbingQueryPlan(spec, hints=hints, strategy="exhaustive")
        # Expected verification work, not the conservative per-plan bound:
        # a sequential scan crosses ``limit / event_rate`` frames before the
        # limit-th event, while an informative ranking concentrates the true
        # positives at the front and verifies only a small multiple of the
        # limit (capped at the sequential figure — an uninformative ranking
        # degrades to random order, never below it).
        rate = stats.event_rate(spec.min_counts) if stats is not None else 0.0
        if rate > 0.0:
            # A GAP constraint makes the sequential scan cross (limit-1)*gap
            # frames no matter how common the event is; on bursty videos the
            # empty stretches between bursts are charged, so they are priced
            # in full.
            sequential_calls = min(
                num_frames,
                math.ceil(spec.limit / rate) + (spec.limit - 1) * spec.gap,
            )
        else:
            sequential_calls = num_frames
        trained = (
            stats is not None and stats.training_event_count(spec.min_counts) > 0
        )
        exhaustive_cost = self._detector_cost(sequential_calls, stats)
        if trained and stats is not None:
            ranked_calls = min(spec.limit * RANKING_OVERSHOOT, sequential_calls)
            importance_cost = CostEstimate(
                detector_calls=ranked_calls,
                detector_seconds=stats.detector_seconds(ranked_calls),
                training_seconds=(
                    0.0 if importance.indexed else stats.specialized_training_seconds()
                ),
                inference_seconds=(
                    0.0
                    if importance.indexed
                    else stats.specialized_inference_seconds(num_frames)
                ),
            )
        else:
            # No training instances: the plan falls back to the sequential
            # scan at runtime without training anything.
            importance_cost = exhaustive_cost
        return [
            PlanCandidate(
                "importance",
                importance,
                importance_cost,
                reason=(
                    "NN ranks frames; detector verifies down the ranking"
                    if trained
                    else "no training instances: falls back to the "
                    "sequential scan at runtime"
                ),
            ),
            PlanCandidate(
                "exhaustive",
                exhaustive,
                exhaustive_cost,
                reason="sequential detection scan until the limit is met",
            ),
        ]

    def _selection_candidates(
        self,
        spec: SelectionQuerySpec,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        filtered = SelectionQueryPlan(spec, hints=hints)
        exhaustive = SelectionQueryPlan(
            spec, enabled_filter_classes=set(), hints=hints
        )
        return [
            PlanCandidate(
                "filtered",
                filtered,
                filtered.estimate_cost(num_frames, stats),
                reason="no-false-negative filter cascade before detection",
            ),
            PlanCandidate(
                "exhaustive",
                exhaustive,
                exhaustive.estimate_cost(num_frames, stats),
                reason="detect every frame, no filters",
            ),
        ]

    def _exact_candidates(
        self,
        spec: ExactQuerySpec,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        return [
            PlanCandidate(
                "exhaustive",
                ExactQueryPlan(spec, hints=hints),
                self._detector_cost(num_frames, stats),
                reason="unrecognised query shape: full scan, all records",
            )
        ]
