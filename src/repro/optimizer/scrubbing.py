"""Physical plan for cardinality-limited scrubbing queries (Section 7).

The plan trains a multi-head count-specialized NN on the labeled set (one head
per queried class, for class-imbalance reasons), scores every unseen frame
with the sum of per-class ``P(count >= N)`` confidences, and runs the full
detector down the ranking until the requested number of verified frames is
found.  When there are no instances of the query in the training set, the plan
defaults to an exhaustive sequential scan, as the paper prescribes.

The ``indexed`` flag reproduces the "BlazeIt (indexed)" variant of Figure 6:
the specialized NN is assumed to have been trained and evaluated ahead of time
(for example by a previous aggregate query), so neither its training nor its
inference cost is charged to this query.
"""

from __future__ import annotations

from collections.abc import Generator, Iterator

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    ExecutionControl,
    ExecutionEvent,
    Progress,
    ScrubbingHit,
)
from repro.core.results import OperatorNode, ScrubbingQueryResult
from repro.errors import PlanningError
from repro.frameql.analyzer import ScrubbingQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.base import PhysicalPlan
from repro.scrubbing.importance import ScrubbingResult, ScrubState
from repro.specialization.multiclass import MultiClassCountModel


class ScrubbingQueryPlan(PhysicalPlan):
    """Importance-ranked scrubbing with detector verification."""

    def __init__(
        self,
        spec: ScrubbingQuerySpec,
        indexed: bool | None = None,
        hints: QueryHints | None = None,
    ) -> None:
        if not spec.min_counts:
            raise PlanningError("scrubbing queries need at least one count predicate")
        if spec.limit < 1:
            raise PlanningError(f"LIMIT must be >= 1, got {spec.limit}")
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()
        # The explicit ``indexed`` argument (historical API, still the second
        # positional parameter) wins over hints.
        self.indexed = self.hints.scrubbing_indexed if indexed is None else indexed

    def describe(self) -> str:
        predicate = " AND ".join(
            f"{cls}>={count}" for cls, count in sorted(self.spec.min_counts.items())
        )
        suffix = " (indexed)" if self.indexed else ""
        return f"ScrubbingQueryPlan({predicate}, limit={self.spec.limit}){suffix}"

    def operator_tree(self) -> OperatorNode:
        predicate = " AND ".join(
            f"{cls}>={count}" for cls, count in sorted(self.spec.min_counts.items())
        )
        ranking_detail = "pre-indexed" if self.indexed else "trained per query"
        return OperatorNode(
            "ScrubbingQueryPlan",
            detail=f"{predicate}, limit={self.spec.limit}, gap={self.spec.gap}",
            children=(
                OperatorNode("MultiClassNNRanking", detail=ranking_detail),
                OperatorNode("DetectorVerification", detail="down the ranking"),
            ),
        )

    def estimate_detector_calls(self, num_frames: int) -> int:
        # The ranking concentrates positives near the front, so verification
        # typically touches a small multiple of the requested clip count; the
        # exhaustive fallback (no training instances) scans everything.
        return min(num_frames, self.spec.limit * 100)

    # -- execution ----------------------------------------------------------------

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        ledger = ExecutionLedger()
        limit = control.effective_limit(self.spec.limit)
        labeled = context.labeled_set
        has_training_instances = (
            labeled is not None and labeled.training_instances(self.spec.min_counts) > 0
        )
        result = ScrubbingResult()
        if not has_training_instances:
            method = "exhaustive"
            description = (
                "no training instances of the event: sequential detection scan"
            )
            yield Progress(
                phase="detection_scan", total_frames=context.video.num_frames
            )
            yield from self._verify_candidates(
                context, control, ledger, np.arange(context.video.num_frames),
                limit, result,
            )
        else:
            method = "importance_indexed" if self.indexed else "importance"
            description = (
                "specialized NN ranks frames by conjunction confidence; "
                "detector verifies down the ranking"
            )
            yield Progress(
                phase="importance_ranking", total_frames=context.video.num_frames
            )
            order = self._importance_order(context, ledger)
            yield from self._verify_candidates(
                context, control, ledger, order, limit, result
            )
            if not result.satisfied and control.stop_reason is None:
                # Exhaustive fallback: sweep only frames the ranked scan
                # never examined — detections already computed during the
                # importance scan are reused via the ledger's seen-frame
                # set, never re-requested from the detector.  When the
                # ranked scan examined everything there is nothing to sweep.
                remaining = np.setdiff1d(
                    np.arange(context.video.num_frames),
                    np.fromiter(ledger.seen_frames, dtype=np.int64, count=-1),
                )
                if remaining.size:
                    yield Progress(
                        phase="exhaustive_fallback",
                        frames_scanned=ledger.frames_decoded,
                        detector_calls=ledger.detector_calls,
                        total_frames=context.video.num_frames,
                    )
                    yield from self._verify_candidates(
                        context, control, ledger, remaining, limit, result
                    )
        if result.satisfied and limit < self.spec.limit:
            control.note_stop("limit")
        frames = sorted(result.frames)
        yield Completed(
            ScrubbingQueryResult(
                kind="scrubbing",
                method=method,
                ledger=ledger,
                detection_calls=ledger.detector_calls,
                plan_description=description,
                frames=frames,
                timestamps=[context.video.timestamp_of(f) for f in frames],
                limit=self.spec.limit,
                # ``satisfied`` keeps its blocking-API meaning — the query's
                # own LIMIT was reached — so a run truncated by a tighter
                # stop-condition limit reports satisfied=False.
                satisfied=result.satisfied and limit >= self.spec.limit,
            ),
            stop_reason=control.stop_reason,
        )

    def _verify_candidates(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        candidate_order: np.ndarray,
        limit: int,
        result: ScrubbingResult,
    ) -> Generator[ExecutionEvent, None, None]:
        """Verify candidates in ranked order, one detector batch per chunk.

        Chunks of eligible candidates (not yet accepted, gap-respecting) are
        assembled up to the control's budget-trimmed batch allowance and
        verified with a single :meth:`~repro.core.context.ExecutionContext.
        detect_batch` call.  Acceptance decisions are then replayed in rank
        order through the same :class:`~repro.scrubbing.importance.ScrubState`
        bookkeeping the scalar walk uses, so the returned frames are
        identical for every batch size: an acceptance inside a chunk can
        invalidate a later in-chunk candidate (its prefetched detection is
        simply discarded — the documented chunking overshoot), never admit
        one the scalar path would have rejected.
        """
        min_counts = self.spec.min_counts
        state = ScrubState(result, limit=limit, gap=self.spec.gap)
        candidates = np.asarray(candidate_order, dtype=np.int64)
        position = 0
        while position < candidates.size and not state.satisfied:
            if control.should_stop(ledger):
                return
            # Chunks are trimmed to the remaining hit budget as well as the
            # detector budget: a run with a tighter LIMIT can never spend
            # more detector calls than one with a looser LIMIT, and each
            # chunk can waste at most (remaining limit - 1) prefetched
            # detections.
            allowance = min(control.batch_allowance(ledger), limit - state.hits)
            chunk: list[int] = []
            while position < candidates.size and len(chunk) < allowance:
                frame = int(candidates[position])
                position += 1
                if state.eligible(frame):
                    chunk.append(frame)
            if not chunk:
                continue
            chunk_results = context.detect_batch(chunk, ledger)
            for frame, detection in zip(chunk, chunk_results):
                if state.satisfied:
                    break
                if not state.eligible(frame):
                    continue
                verified = state.examine(
                    frame,
                    all(
                        detection.count(object_class) >= min_count
                        for object_class, min_count in min_counts.items()
                    ),
                )
                if verified:
                    yield ScrubbingHit(
                        frame_index=frame,
                        timestamp=context.video.timestamp_of(frame),
                        hits_so_far=state.hits,
                        limit=limit,
                    )
            yield Progress(
                phase="verification",
                frames_scanned=ledger.frames_decoded,
                detector_calls=ledger.detector_calls,
                total_frames=context.video.num_frames,
            )

    def _importance_order(
        self, context: ExecutionContext, ledger: ExecutionLedger
    ) -> np.ndarray:
        """Frames ranked by specialized-NN conjunction confidence, best first."""
        labeled = context.require_labeled_set()
        training_ledger = (
            ledger if (context.config.include_training_time and not self.indexed) else None
        )
        model = MultiClassCountModel(
            object_classes=sorted(self.spec.min_counts),
            model_type=context.config.specialized_model_type,
            training_config=context.config.training,
            seed=context.config.seed,
        )
        counts_per_class = {
            object_class: labeled.train_counts(object_class)
            for object_class in self.spec.min_counts
        }
        model.fit(labeled.train_features, counts_per_class, training_ledger)

        inference_ledger = None if self.indexed else ledger
        scores = model.score_conjunction(
            context.test_features(), self.spec.min_counts, inference_ledger
        )
        return np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")
