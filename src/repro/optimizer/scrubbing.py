"""Physical plan for cardinality-limited scrubbing queries (Section 7).

The plan composes :class:`~repro.optimizer.operators.ImportanceOrderedScan`
(a multi-head count-specialized NN ranking every unseen frame by the sum of
per-class ``P(count >= N)`` confidences) with
:class:`~repro.optimizer.operators.DetectorVerifier` (full-detector
verification down the ranking until the requested number of verified frames
is found).  When there are no instances of the event in the training set the
plan defaults to an exhaustive sequential scan, as the paper prescribes; the
cost-based optimizer can also force that strategy outright via ``strategy``.

The ``indexed`` flag reproduces the "BlazeIt (indexed)" variant of Figure 6:
the specialized NN is assumed to have been trained and evaluated ahead of time
(for example by a previous aggregate query), so neither its training nor its
inference cost is charged to this query.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    ExecutionControl,
    ExecutionEvent,
    Progress,
)
from repro.core.results import OperatorNode, ScrubbingQueryResult
from repro.errors import PlanningError
from repro.frameql.analyzer import ScrubbingQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.base import CostEstimate, PhysicalPlan
from repro.optimizer.operators import DetectorVerifier, ImportanceOrderedScan
from repro.scrubbing.importance import ScrubbingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics
    from repro.core.labeled_set import LabeledSet

#: Multiplier on ``limit / event_rate`` when bounding verification work: the
#: ranking concentrates positives near the front, so random-order cost is
#: already generous; the slack covers ranking noise and gap rejections.
_VERIFY_SLACK = 3.0

#: Floor on the ranked-verification estimate, in multiples of the limit.
_VERIFY_FLOOR = 8


class ScrubbingQueryPlan(PhysicalPlan):
    """Importance-ranked scrubbing with detector verification."""

    def __init__(
        self,
        spec: ScrubbingQuerySpec,
        indexed: bool | None = None,
        hints: QueryHints | None = None,
        strategy: str | None = None,
    ) -> None:
        if not spec.min_counts:
            raise PlanningError("scrubbing queries need at least one count predicate")
        if spec.limit < 1:
            raise PlanningError(f"LIMIT must be >= 1, got {spec.limit}")
        if strategy not in (None, "importance", "exhaustive"):
            raise PlanningError(
                f"unknown scrubbing strategy {strategy!r}; "
                "expected 'importance' or 'exhaustive'"
            )
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()
        # The explicit ``indexed`` argument (historical API, still the second
        # positional parameter) wins over hints.
        self.indexed = self.hints.scrubbing_indexed if indexed is None else indexed
        #: Forced strategy; ``None`` ranks when the training day has
        #: instances of the event and falls back to the exhaustive scan
        #: otherwise (the paper's rule).
        self.strategy = strategy
        self._ranking = ImportanceOrderedScan(spec.min_counts, indexed=self.indexed)
        self._verifier = DetectorVerifier(spec.min_counts, gap=spec.gap)

    def describe(self) -> str:
        predicate = " AND ".join(
            f"{cls}>={count}" for cls, count in sorted(self.spec.min_counts.items())
        )
        suffix = " (indexed)" if self.indexed else ""
        if self.strategy is not None:
            suffix += f" (strategy={self.strategy})"
        return f"ScrubbingQueryPlan({predicate}, limit={self.spec.limit}){suffix}"

    def uses_importance_ranking(self, labeled_set: LabeledSet | None) -> bool:
        """Whether execution will take the importance-ranked path.

        Mirrors the decision :meth:`_stream` makes: a forced strategy wins
        outright, otherwise the ranking runs exactly when the training day
        contains instances of the event (the paper's rule).
        """
        if self.strategy is not None:
            return self.strategy == "importance"
        return (
            labeled_set is not None
            and labeled_set.training_instances(self.spec.min_counts) > 0
        )

    def parallel_profitable(self, context: ExecutionContext) -> bool:
        """Statistics-free fallback: decline default parallelism.

        With catalog statistics the optimizer's
        :class:`~repro.optimizer.cost.ParallelismModel` prices this per query
        and reaches the same conclusion on the merits: scrubbing verifies a
        handful of frames and stops at its ``LIMIT``, so the speculative
        prefetch is almost pure waste — measured as a 0.44x *regression* at 4
        workers before the cost model existed.  Without statistics there is
        nothing to price, so this conservative blanket decline stands in.
        An explicit per-call ``parallelism=`` still shards (results stay
        bit-identical, only wall-clock differs).
        """
        return False

    def operator_tree(
        self,
        num_frames: int | None = None,
        stats: VideoStatistics | None = None,
    ) -> OperatorNode:
        predicate = " AND ".join(
            f"{cls}>={count}" for cls, count in sorted(self.spec.min_counts.items())
        )
        calls: int | None = None
        verify_seconds: float | None = None
        ranking_calls: int | None = None
        ranking_seconds: float | None = None
        if num_frames is not None and stats is not None:
            calls = self.estimate_detector_calls(num_frames, stats)
            verify_seconds = stats.detector_seconds(calls)
            ranking_calls = 0
            if not self.indexed:
                ranking_seconds = (
                    stats.specialized_training_seconds()
                    + stats.specialized_inference_seconds(num_frames)
                )
        verifier_node = OperatorNode(
            "DetectorVerifier",
            detail=(
                "sequential scan"
                if self.strategy == "exhaustive"
                else "down the ranking"
            ),
            estimated_detector_calls=calls,
            estimated_seconds=verify_seconds,
        )
        if self.strategy == "exhaustive":
            children: tuple[OperatorNode, ...] = (verifier_node,)
        else:
            children = (
                OperatorNode(
                    "ImportanceOrderedScan",
                    detail="pre-indexed" if self.indexed else "trained per query",
                    estimated_detector_calls=ranking_calls,
                    estimated_seconds=ranking_seconds,
                ),
                verifier_node,
            )
        return OperatorNode(
            "ScrubbingQueryPlan",
            detail=f"{predicate}, limit={self.spec.limit}, gap={self.spec.gap}",
            children=children,
        )

    def estimate_detector_calls(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> int:
        if stats is None:
            # Without statistics the only certain bound is the full video
            # (ranked verification plus the exhaustive fallback sweep never
            # re-charge a frame, so together they touch each frame once).
            return num_frames
        rate = stats.event_rate(self.spec.min_counts)
        if self.strategy != "exhaustive" and stats.training_event_count(
            self.spec.min_counts
        ) <= 0:
            # The plan will fall back to the exhaustive sequential scan.
            return num_frames
        if rate <= 0.0:
            return num_frames
        # Frames examined before the limit-th event at held-out rate ``rate``,
        # with slack; the ranked scan concentrates positives near the front,
        # so the same figure bounds it comfortably.  A GAP constraint forces
        # every hit into a different stretch of the video — (limit-1)*gap
        # frames must be crossed regardless of the event rate, and on bursty
        # videos the empty stretches between bursts are charged — so the gap
        # budget is added on top.
        expected = math.ceil(self.spec.limit / rate * _VERIFY_SLACK)
        bound = max(self.spec.limit * _VERIFY_FLOOR, expected)
        bound += (self.spec.limit - 1) * self.spec.gap
        return min(num_frames, bound)

    def estimate_cost(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> CostEstimate:
        base = super().estimate_cost(num_frames, stats)
        if stats is None or self.strategy == "exhaustive" or self.indexed:
            return base
        if stats.training_event_count(self.spec.min_counts) <= 0:
            # No training instances: the ranking never trains at runtime.
            return base
        return CostEstimate(
            detector_calls=base.detector_calls,
            detector_seconds=base.detector_seconds,
            training_seconds=stats.specialized_training_seconds(),
            inference_seconds=stats.specialized_inference_seconds(num_frames),
        )

    # -- execution ----------------------------------------------------------------

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        ledger = ExecutionLedger()
        limit = control.effective_limit(self.spec.limit)
        labeled = context.labeled_set
        use_importance = self.uses_importance_ranking(labeled)
        result = ScrubbingResult()
        if not use_importance:
            method = "exhaustive"
            description = (
                "no training instances of the event: sequential detection scan"
                if self.strategy is None
                else "forced exhaustive sequential detection scan"
            )
            yield Progress(
                phase="detection_scan", total_frames=context.video.num_frames
            )
            # Shard-aware entry: the exhaustive walk visits frames in
            # ascending order, so shard workers prefetch their ranges while
            # the verifier consumes front-to-back (bounded speculation keeps
            # overshoot small when the LIMIT fires early).
            context.announce_access_plan(np.arange(context.video.num_frames))
            with self._verifier.traced(context, ledger):
                yield from self._verifier.stream(
                    context, control, ledger,
                    np.arange(context.video.num_frames), limit, result,
                )
        else:
            method = "importance_indexed" if self.indexed else "importance"
            description = (
                "specialized NN ranks frames by conjunction confidence; "
                "detector verifies down the ranking"
            )
            yield Progress(
                phase="importance_ranking", total_frames=context.video.num_frames
            )
            with self._ranking.traced(context, ledger):
                order = self._ranking.order(context, ledger)
            # Shard-aware entry: each shard worker verifies its frames in
            # ranking-restricted order — exactly the subsequence the global
            # gap/limit walk will consume from it — so the hit set (and its
            # order) is identical to the sequential walk at any parallelism.
            context.announce_access_plan(order)
            with self._verifier.traced(context, ledger):
                yield from self._verifier.stream(
                    context, control, ledger, order, limit, result
                )
            if not result.satisfied and control.stop_reason is None:
                # Exhaustive fallback: sweep only frames the ranked scan
                # never examined — detections already computed during the
                # importance scan are reused via the ledger's seen-frame
                # set, never re-requested from the detector.  When the
                # ranked scan examined everything there is nothing to sweep.
                remaining = np.setdiff1d(
                    np.arange(context.video.num_frames),
                    np.fromiter(ledger.seen_frames, dtype=np.int64, count=-1),
                )
                if remaining.size:
                    yield Progress(
                        phase="exhaustive_fallback",
                        frames_scanned=ledger.frames_decoded,
                        detector_calls=ledger.detector_calls,
                        total_frames=context.video.num_frames,
                    )
                    with self._verifier.traced(context, ledger):
                        yield from self._verifier.stream(
                            context, control, ledger, remaining, limit, result
                        )
        if result.satisfied and limit < self.spec.limit:
            control.note_stop("limit")
        frames = sorted(result.frames)
        yield Completed(
            ScrubbingQueryResult(
                kind="scrubbing",
                method=method,
                ledger=ledger,
                detection_calls=ledger.detector_calls,
                plan_description=description,
                frames=frames,
                timestamps=[context.video.timestamp_of(f) for f in frames],
                limit=self.spec.limit,
                # ``satisfied`` keeps its blocking-API meaning — the query's
                # own LIMIT was reached — so a run truncated by a tighter
                # stop-condition limit reports satisfied=False.
                satisfied=result.satisfied and limit >= self.spec.limit,
            ),
            stop_reason=control.stop_reason,
        )
