"""Physical plan for aggregate queries (Algorithm 1 of the paper).

The plan implements the full decision procedure of Section 6:

1. If the query has no error tolerance (or asks for ``COUNT(DISTINCT
   trackid)``), fall back to exact execution over every frame.
2. If there is not enough training data for the queried class, run plain
   adaptive sampling (traditional AQP).
3. Otherwise train a count-specialized NN on the labeled set and estimate its
   error on the held-out day with the bootstrap.  If the error satisfies the
   user's bound at the requested confidence, rewrite the query: run the
   specialized NN over every unseen frame and return its mean directly.
4. Otherwise use the specialized NN as a control variate: its expected counts
   over all unseen frames are the cheap auxiliary variable, and the detector
   is sampled adaptively until the variance-reduced CLT bound is met.

The :class:`~repro.core.config.AggregateMethod` configuration can force any
one of these strategies, which is how the benchmark harness produces the
per-variant series of Figure 4 and Figure 5.
"""

from __future__ import annotations

from collections.abc import Generator, Iterator

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.aqp.control_variates import control_variate_stream
from repro.aqp.estimators import epsilon_net_minimum_samples
from repro.aqp.sampling import AdaptiveSamplingConfig, adaptive_sample_stream
from repro.core.config import AggregateMethod
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    Progress,
)
from repro.core.results import AggregateResult, OperatorNode
from repro.errors import PlanningError
from repro.frameql.analyzer import AggregateQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.base import PhysicalPlan
from repro.specialization.calibration import (
    bootstrap_error_estimate,
    error_within_tolerance,
)
from repro.specialization.count_model import CountSpecializedModel
from repro.tracking.iou_tracker import IoUTracker


class AggregateQueryPlan(PhysicalPlan):
    """Adaptive plan for ``FCOUNT`` / ``COUNT`` aggregate queries."""

    def __init__(
        self, spec: AggregateQuerySpec, hints: QueryHints | None = None
    ) -> None:
        if spec.object_class is None and spec.aggregate != "count_distinct":
            raise PlanningError(
                "aggregate queries must constrain a single object class "
                "(WHERE class = '<name>')"
            )
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()

    def describe(self) -> str:
        return (
            f"AggregateQueryPlan(aggregate={self.spec.aggregate}, "
            f"class={self.spec.object_class}, error={self.spec.error_tolerance})"
        )

    def operator_tree(self) -> OperatorNode:
        spec = self.spec
        if spec.aggregate == "count_distinct" or spec.error_tolerance is None:
            return OperatorNode(
                "AggregateQueryPlan",
                detail=f"aggregate={spec.aggregate}",
                children=(OperatorNode("ExhaustiveDetectionScan"),),
            )
        return OperatorNode(
            "AggregateQueryPlan",
            detail=(
                f"aggregate={spec.aggregate}, class={spec.object_class}, "
                f"error={spec.error_tolerance} @ {spec.confidence:g}"
            ),
            children=(
                OperatorNode("TrainSpecializedNN", detail=f"class={spec.object_class}"),
                OperatorNode("BootstrapAccuracyGate", detail="Algorithm 1"),
                OperatorNode("QueryRewrite", detail="specialized NN on every frame"),
                OperatorNode(
                    "ControlVariateSampling", detail="adaptive CLT-bounded sampling"
                ),
            ),
        )

    def estimate_detector_calls(self, num_frames: int) -> int:
        if self.spec.error_tolerance is None or self.spec.aggregate == "count_distinct":
            return num_frames
        # The adaptive sampler starts from the epsilon-net minimum; the true
        # per-frame count range K is only known at execution time, so the
        # nominal fallback K=2 used by the plan itself stands in for it.
        return min(
            num_frames, epsilon_net_minimum_samples(2.0, self.spec.error_tolerance)
        )

    # -- entry point ---------------------------------------------------------------

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        """Algorithm 1's decision procedure, as an event stream."""
        spec = self.spec
        ledger = ExecutionLedger()
        method = context.config.aggregate_method
        yield Progress(
            phase="plan_selection", total_frames=context.video.num_frames
        )

        if spec.aggregate == "count_distinct":
            result = yield from self._stream_exact(context, control, ledger)
        elif spec.error_tolerance is None or method == AggregateMethod.EXACT:
            result = yield from self._stream_exact(context, control, ledger)
        elif method == AggregateMethod.NAIVE_AQP:
            result = yield from self._stream_aqp(context, control, ledger)
        else:
            result = yield from self._stream_specialized(
                context, control, ledger, method
            )
        # The sampling loops honour the detector budget by capping their
        # sample count, which ends them through the normal "population
        # exhausted" exit; attribute the early finish to the budget here.
        if control.stop_reason is None and control.out_of_budget(ledger):
            control.note_stop("max_detector_calls")
        yield Completed(result, stop_reason=control.stop_reason)

    def _stream_specialized(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        method: AggregateMethod,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        spec = self.spec
        labeled = context.labeled_set
        enough_data = (
            labeled is not None
            and labeled.training_positives(spec.object_class)
            >= context.config.min_training_positives
        )
        if not enough_data:
            if method in (
                AggregateMethod.SPECIALIZED_REWRITE,
                AggregateMethod.CONTROL_VARIATES,
            ):
                raise PlanningError(
                    f"not enough training data for class {spec.object_class!r} to "
                    f"force {method.value}; the training day has too few positives"
                )
            return (yield from self._stream_aqp(context, control, ledger))

        yield Progress(phase="train_specialized_nn")
        model = self._train_model(context, ledger)
        if method == AggregateMethod.SPECIALIZED_REWRITE:
            return (yield from self._stream_rewrite(context, control, ledger, model))
        if method == AggregateMethod.CONTROL_VARIATES:
            return (
                yield from self._stream_control_variates(
                    context, control, ledger, model
                )
            )

        # AUTO: Algorithm 1's accuracy gate.
        yield Progress(phase="accuracy_gate")
        if self._rewrite_is_accurate_enough(context, ledger, model):
            return (yield from self._stream_rewrite(context, control, ledger, model))
        return (
            yield from self._stream_control_variates(context, control, ledger, model)
        )

    # -- model training and the accuracy gate --------------------------------------------

    def _train_model(
        self, context: ExecutionContext, ledger: ExecutionLedger
    ) -> CountSpecializedModel:
        labeled = context.require_labeled_set()
        model = CountSpecializedModel(
            object_class=self.spec.object_class,
            model_type=context.config.specialized_model_type,
            hidden_size=context.config.specialized_hidden_size,
            training_config=context.config.training,
            seed=context.config.seed,
        )
        training_ledger = ledger if context.config.include_training_time else None
        model.fit(
            labeled.train_features,
            labeled.train_counts(self.spec.object_class),
            training_ledger,
        )
        return model

    def _rewrite_is_accurate_enough(
        self,
        context: ExecutionContext,
        ledger: ExecutionLedger,
        model: CountSpecializedModel,
    ) -> bool:
        labeled = context.require_labeled_set()
        threshold_ledger = ledger if context.config.include_training_time else None
        predictions = model.predict_counts(labeled.heldout_features, threshold_ledger)
        truths = labeled.heldout_counts(self.spec.object_class)
        errors = bootstrap_error_estimate(
            predictions, truths, seed=context.config.seed
        )
        return error_within_tolerance(
            errors, self.spec.error_tolerance, self.spec.confidence
        )

    # -- execution strategies -----------------------------------------------------------

    def _stream_exact(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        object_class = self.spec.object_class
        num_frames = context.video.num_frames
        if self.spec.aggregate == "count_distinct":
            results = []
            while len(results) < num_frames and not control.should_stop(ledger):
                stop_at = min(
                    num_frames, len(results) + control.batch_allowance(ledger)
                )
                results.extend(
                    context.detect_batch(np.arange(len(results), stop_at), ledger)
                )
                yield Progress(
                    phase="detection_scan",
                    frames_scanned=ledger.frames_decoded,
                    detector_calls=ledger.detector_calls,
                    total_frames=num_frames,
                )
            tracker = IoUTracker(iou_threshold=0.7, max_gap=1)
            tracks = tracker.resolve(results)
            if object_class is not None:
                tracks = [t for t in tracks if t.object_class == object_class]
            value = float(len(tracks))
            scanned = len(results)
            partial_note = "distinct count covers only the scanned prefix"
        else:
            count_chunks: list[np.ndarray] = []
            scanned = 0
            running_sum = 0.0
            while scanned < num_frames and not control.should_stop(ledger):
                stop_at = min(num_frames, scanned + control.batch_allowance(ledger))
                chunk = context.detect_counts_batch(
                    np.arange(scanned, stop_at), object_class, ledger
                )
                count_chunks.append(chunk)
                running_sum += float(chunk.sum())
                scanned = stop_at
                yield Progress(
                    phase="detection_scan",
                    frames_scanned=ledger.frames_decoded,
                    detector_calls=ledger.detector_calls,
                    total_frames=num_frames,
                )
                yield EstimateUpdate(
                    estimate=self._finalize(running_sum / scanned, num_frames),
                    half_width=0.0,
                    samples_used=scanned,
                    confidence=self.spec.confidence,
                )
            counts = (
                np.concatenate(count_chunks)
                if count_chunks
                else np.empty(0, dtype=np.float64)
            )
            mean = float(counts.mean()) if counts.size else 0.0
            value = self._finalize(mean, num_frames)
            partial_note = "value computed from the scanned prefix only"
        description = "exact: object detection on every frame"
        if scanned < num_frames:
            description += (
                f" (stopped early: {scanned}/{num_frames} frames scanned; "
                f"{partial_note})"
            )
        return AggregateResult(
            kind="aggregate",
            method="exact",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=description,
            value=value,
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=scanned,
        )

    def _width_scale(self, num_frames: int) -> float:
        """Factor putting CI half-widths in the streamed estimate's units.

        ``_finalize`` scales ``COUNT`` estimates from per-frame means to
        totals; events and ``ci_width`` stop checks must scale the half-width
        identically or "estimate ± half_width" would be off by ``num_frames``.
        The result's ``half_width`` field stays in per-frame units, matching
        the blocking API's historical contract.
        """
        return float(num_frames) if self.spec.aggregate == "count" else 1.0

    def _sampling_config(
        self, control: ExecutionControl, ledger: ExecutionLedger
    ) -> AdaptiveSamplingConfig | None:
        """Default sampling knobs, with the detector budget folded into the cap."""
        budget = control.stop.max_detector_calls
        if budget is None:
            return None
        return AdaptiveSamplingConfig(
            max_samples=max(1, budget - ledger.detector_calls)
        )

    def _stream_aqp(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        object_class = self.spec.object_class
        num_frames = context.video.num_frames
        value_range = self._value_range(context)
        scale = self._width_scale(num_frames)
        result = None
        for round_ in adaptive_sample_stream(
            sample_fn=lambda idx: context.detect_counts_batch(idx, object_class, ledger),
            population_size=num_frames,
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            value_range=value_range,
            rng=context.rng,
            config=self._sampling_config(control, ledger),
            should_stop=lambda taken, hw: control.should_stop(
                ledger, half_width=hw * scale
            ),
        ):
            yield EstimateUpdate(
                estimate=self._finalize(round_.estimate, num_frames),
                half_width=round_.half_width * scale,
                samples_used=round_.samples_used,
                confidence=self.spec.confidence,
            )
            if round_.done:
                result = round_.result
        assert result is not None
        return AggregateResult(
            kind="aggregate",
            method="naive_aqp",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                f"adaptive sampling (epsilon-net start, CLT stop), "
                f"K={value_range:.0f}"
            ),
            value=self._finalize(result.estimate, num_frames),
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
        )

    def _stream_rewrite(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        model: CountSpecializedModel,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        num_frames = context.video.num_frames
        features = context.test_features()
        yield Progress(
            phase="specialized_inference",
            frames_scanned=ledger.frames_decoded,
            detector_calls=ledger.detector_calls,
            total_frames=num_frames,
        )
        mean_count = model.mean_count(features, ledger)
        yield EstimateUpdate(
            estimate=self._finalize(mean_count, num_frames),
            half_width=0.0,
            samples_used=num_frames,
            confidence=self.spec.confidence,
        )
        return AggregateResult(
            kind="aggregate",
            method="specialized_rewrite",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                "query rewriting: specialized NN evaluated on every unseen frame"
            ),
            value=self._finalize(mean_count, num_frames),
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=num_frames,
        )

    def _stream_control_variates(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        model: CountSpecializedModel,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        object_class = self.spec.object_class
        num_frames = context.video.num_frames
        features = context.test_features()
        auxiliary = model.expected_counts(features, ledger)
        value_range = self._value_range(context)
        scale = self._width_scale(num_frames)
        result = None
        for round_ in control_variate_stream(
            sample_fn=lambda idx: context.detect_counts_batch(idx, object_class, ledger),
            auxiliary_values=auxiliary,
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            value_range=value_range,
            rng=context.rng,
            config=self._sampling_config(control, ledger),
            should_stop=lambda taken, hw: control.should_stop(
                ledger, half_width=hw * scale
            ),
        ):
            yield EstimateUpdate(
                estimate=self._finalize(round_.estimate, num_frames),
                half_width=round_.half_width * scale,
                samples_used=round_.samples_used,
                confidence=self.spec.confidence,
            )
            if round_.done:
                result = round_.result
        assert result is not None
        return AggregateResult(
            kind="aggregate",
            method="control_variates",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                "control variates: specialized NN as the auxiliary variable, "
                f"correlation={result.correlation:.2f}"
            ),
            value=self._finalize(result.estimate, num_frames),
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
            correlation=result.correlation,
        )

    # -- helpers -------------------------------------------------------------------------------

    def _value_range(self, context: ExecutionContext) -> float:
        """``K``: the range of the per-frame count, from the labeled set."""
        labeled = context.labeled_set
        if labeled is not None and self.spec.object_class is not None:
            train_max = int(labeled.train_counts(self.spec.object_class).max(initial=0))
            heldout_max = int(
                labeled.heldout_counts(self.spec.object_class).max(initial=0)
            )
            return float(max(train_max, heldout_max) + 1)
        return 2.0

    def _finalize(self, mean_per_frame: float, num_frames: int) -> float:
        """Convert the frame-averaged mean to the query's requested statistic."""
        if self.spec.aggregate in ("fcount", "avg"):
            return mean_per_frame
        if self.spec.aggregate == "count":
            return mean_per_frame * num_frames
        return mean_per_frame
