"""Physical plan for aggregate queries (Algorithm 1 of the paper).

The plan implements the full decision procedure of Section 6:

1. If the query has no error tolerance (or asks for ``COUNT(DISTINCT
   trackid)``), fall back to exact execution over every frame.
2. If there is not enough training data for the queried class, run plain
   adaptive sampling (traditional AQP).
3. Otherwise train a count-specialized NN on the labeled set and estimate its
   error on the held-out day with the bootstrap.  If the error satisfies the
   user's bound at the requested confidence, rewrite the query: run the
   specialized NN over every unseen frame and return its mean directly.
4. Otherwise use the specialized NN as a control variate: its expected counts
   over all unseen frames are the cheap auxiliary variable, and the detector
   is sampled adaptively until the variance-reduced CLT bound is met.

The :class:`~repro.core.config.AggregateMethod` configuration can force any
one of these strategies, which is how the benchmark harness produces the
per-variant series of Figure 4 and Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.aqp.control_variates import control_variate_estimate
from repro.aqp.estimators import epsilon_net_minimum_samples
from repro.aqp.sampling import adaptive_sample
from repro.core.config import AggregateMethod
from repro.core.context import ExecutionContext
from repro.core.results import AggregateResult, OperatorNode
from repro.errors import PlanningError
from repro.frameql.analyzer import AggregateQuerySpec
from repro.metrics.runtime import RuntimeLedger
from repro.optimizer.base import PhysicalPlan
from repro.specialization.calibration import (
    bootstrap_error_estimate,
    error_within_tolerance,
)
from repro.specialization.count_model import CountSpecializedModel
from repro.tracking.iou_tracker import IoUTracker


class AggregateQueryPlan(PhysicalPlan):
    """Adaptive plan for ``FCOUNT`` / ``COUNT`` aggregate queries."""

    def __init__(
        self, spec: AggregateQuerySpec, hints: QueryHints | None = None
    ) -> None:
        if spec.object_class is None and spec.aggregate != "count_distinct":
            raise PlanningError(
                "aggregate queries must constrain a single object class "
                "(WHERE class = '<name>')"
            )
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()

    def describe(self) -> str:
        return (
            f"AggregateQueryPlan(aggregate={self.spec.aggregate}, "
            f"class={self.spec.object_class}, error={self.spec.error_tolerance})"
        )

    def operator_tree(self) -> OperatorNode:
        spec = self.spec
        if spec.aggregate == "count_distinct" or spec.error_tolerance is None:
            return OperatorNode(
                "AggregateQueryPlan",
                detail=f"aggregate={spec.aggregate}",
                children=(OperatorNode("ExhaustiveDetectionScan"),),
            )
        return OperatorNode(
            "AggregateQueryPlan",
            detail=(
                f"aggregate={spec.aggregate}, class={spec.object_class}, "
                f"error={spec.error_tolerance} @ {spec.confidence:g}"
            ),
            children=(
                OperatorNode("TrainSpecializedNN", detail=f"class={spec.object_class}"),
                OperatorNode("BootstrapAccuracyGate", detail="Algorithm 1"),
                OperatorNode("QueryRewrite", detail="specialized NN on every frame"),
                OperatorNode(
                    "ControlVariateSampling", detail="adaptive CLT-bounded sampling"
                ),
            ),
        )

    def estimate_detector_calls(self, num_frames: int) -> int:
        if self.spec.error_tolerance is None or self.spec.aggregate == "count_distinct":
            return num_frames
        # The adaptive sampler starts from the epsilon-net minimum; the true
        # per-frame count range K is only known at execution time, so the
        # nominal fallback K=2 used by the plan itself stands in for it.
        return min(
            num_frames, epsilon_net_minimum_samples(2.0, self.spec.error_tolerance)
        )

    # -- entry point ---------------------------------------------------------------

    def execute(self, context: ExecutionContext) -> AggregateResult:
        spec = self.spec
        ledger = RuntimeLedger()
        method = context.config.aggregate_method

        if spec.aggregate == "count_distinct":
            return self._execute_exact(context, ledger)
        if spec.error_tolerance is None or method == AggregateMethod.EXACT:
            return self._execute_exact(context, ledger)
        if method == AggregateMethod.NAIVE_AQP:
            return self._execute_aqp(context, ledger)

        labeled = context.labeled_set
        enough_data = (
            labeled is not None
            and labeled.training_positives(spec.object_class)
            >= context.config.min_training_positives
        )
        if not enough_data:
            if method in (
                AggregateMethod.SPECIALIZED_REWRITE,
                AggregateMethod.CONTROL_VARIATES,
            ):
                raise PlanningError(
                    f"not enough training data for class {spec.object_class!r} to "
                    f"force {method.value}; the training day has too few positives"
                )
            return self._execute_aqp(context, ledger)

        model = self._train_model(context, ledger)
        if method == AggregateMethod.SPECIALIZED_REWRITE:
            return self._execute_rewrite(context, ledger, model)
        if method == AggregateMethod.CONTROL_VARIATES:
            return self._execute_control_variates(context, ledger, model)

        # AUTO: Algorithm 1's accuracy gate.
        if self._rewrite_is_accurate_enough(context, ledger, model):
            return self._execute_rewrite(context, ledger, model)
        return self._execute_control_variates(context, ledger, model)

    # -- model training and the accuracy gate --------------------------------------------

    def _train_model(
        self, context: ExecutionContext, ledger: RuntimeLedger
    ) -> CountSpecializedModel:
        labeled = context.require_labeled_set()
        model = CountSpecializedModel(
            object_class=self.spec.object_class,
            model_type=context.config.specialized_model_type,
            hidden_size=context.config.specialized_hidden_size,
            training_config=context.config.training,
            seed=context.config.seed,
        )
        training_ledger = ledger if context.config.include_training_time else None
        model.fit(
            labeled.train_features,
            labeled.train_counts(self.spec.object_class),
            training_ledger,
        )
        return model

    def _rewrite_is_accurate_enough(
        self,
        context: ExecutionContext,
        ledger: RuntimeLedger,
        model: CountSpecializedModel,
    ) -> bool:
        labeled = context.require_labeled_set()
        threshold_ledger = ledger if context.config.include_training_time else None
        predictions = model.predict_counts(labeled.heldout_features, threshold_ledger)
        truths = labeled.heldout_counts(self.spec.object_class)
        errors = bootstrap_error_estimate(
            predictions, truths, seed=context.config.seed
        )
        return error_within_tolerance(
            errors, self.spec.error_tolerance, self.spec.confidence
        )

    # -- execution strategies -----------------------------------------------------------

    def _execute_exact(
        self, context: ExecutionContext, ledger: RuntimeLedger
    ) -> AggregateResult:
        object_class = self.spec.object_class
        num_frames = context.video.num_frames
        if self.spec.aggregate == "count_distinct":
            tracker = IoUTracker(iou_threshold=0.7, max_gap=1)
            results = [
                context.detect(frame, ledger) for frame in range(num_frames)
            ]
            tracks = tracker.resolve(results)
            if object_class is not None:
                tracks = [t for t in tracks if t.object_class == object_class]
            value = float(len(tracks))
        else:
            counts = context.detect_counts(
                np.arange(num_frames), object_class, ledger
            )
            value = self._finalize(float(counts.mean()), num_frames)
        return AggregateResult(
            kind="aggregate",
            method="exact",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description="exact: object detection on every frame",
            value=value,
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=num_frames,
        )

    def _execute_aqp(
        self, context: ExecutionContext, ledger: RuntimeLedger
    ) -> AggregateResult:
        object_class = self.spec.object_class
        num_frames = context.video.num_frames
        value_range = self._value_range(context)
        result = adaptive_sample(
            sample_fn=lambda idx: context.detect_counts(idx, object_class, ledger),
            population_size=num_frames,
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            value_range=value_range,
            rng=context.rng,
        )
        return AggregateResult(
            kind="aggregate",
            method="naive_aqp",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                f"adaptive sampling (epsilon-net start, CLT stop), "
                f"K={value_range:.0f}"
            ),
            value=self._finalize(result.estimate, num_frames),
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
        )

    def _execute_rewrite(
        self,
        context: ExecutionContext,
        ledger: RuntimeLedger,
        model: CountSpecializedModel,
    ) -> AggregateResult:
        num_frames = context.video.num_frames
        features = context.test_features()
        mean_count = model.mean_count(features, ledger)
        return AggregateResult(
            kind="aggregate",
            method="specialized_rewrite",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                "query rewriting: specialized NN evaluated on every unseen frame"
            ),
            value=self._finalize(mean_count, num_frames),
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=num_frames,
        )

    def _execute_control_variates(
        self,
        context: ExecutionContext,
        ledger: RuntimeLedger,
        model: CountSpecializedModel,
    ) -> AggregateResult:
        object_class = self.spec.object_class
        num_frames = context.video.num_frames
        features = context.test_features()
        auxiliary = model.expected_counts(features, ledger)
        value_range = self._value_range(context)
        result = control_variate_estimate(
            sample_fn=lambda idx: context.detect_counts(idx, object_class, ledger),
            auxiliary_values=auxiliary,
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            value_range=value_range,
            rng=context.rng,
        )
        return AggregateResult(
            kind="aggregate",
            method="control_variates",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                "control variates: specialized NN as the auxiliary variable, "
                f"correlation={result.correlation:.2f}"
            ),
            value=self._finalize(result.estimate, num_frames),
            error_tolerance=self.spec.error_tolerance,
            confidence=self.spec.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
            correlation=result.correlation,
        )

    # -- helpers -------------------------------------------------------------------------------

    def _value_range(self, context: ExecutionContext) -> float:
        """``K``: the range of the per-frame count, from the labeled set."""
        labeled = context.labeled_set
        if labeled is not None and self.spec.object_class is not None:
            train_max = int(labeled.train_counts(self.spec.object_class).max(initial=0))
            heldout_max = int(
                labeled.heldout_counts(self.spec.object_class).max(initial=0)
            )
            return float(max(train_max, heldout_max) + 1)
        return 2.0

    def _finalize(self, mean_per_frame: float, num_frames: int) -> float:
        """Convert the frame-averaged mean to the query's requested statistic."""
        if self.spec.aggregate in ("fcount", "avg"):
            return mean_per_frame
        if self.spec.aggregate == "count":
            return mean_per_frame * num_frames
        return mean_per_frame
