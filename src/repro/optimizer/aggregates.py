"""Physical plan for aggregate queries (Algorithm 1 of the paper).

The plan implements the full decision procedure of Section 6 as a composition
of physical operators:

1. If the query has no error tolerance (or asks for ``COUNT(DISTINCT
   trackid)``), fall back to an exhaustive :class:`FullScan`.
2. If there is not enough training data for the queried class, run plain
   adaptive sampling (:class:`RandomSampler`, traditional AQP).
3. Otherwise :class:`SpecializedInference` trains a count-specialized NN on
   the labeled set and estimates its error on the held-out day with the
   bootstrap.  If the error satisfies the user's bound at the requested
   confidence, rewrite the query: run the specialized NN over every unseen
   frame and return its mean directly.
4. Otherwise use the specialized NN as a control variate
   (:class:`ControlVariateSampler`): its expected counts over all unseen
   frames are the cheap auxiliary variable, and the detector is sampled
   adaptively until the variance-reduced CLT bound is met.

The :class:`~repro.core.config.AggregateMethod` configuration — or the
``method`` constructor argument the cost-based optimizer uses for its forced
candidates — can force any one of these strategies, which is how the
benchmark harness produces the per-variant series of Figure 4 and Figure 5.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Generator, Iterator
from typing import TYPE_CHECKING

from scipy import stats as scipy_stats

from repro.api.hints import QueryHints, require_hints
from repro.aqp.estimators import epsilon_net_minimum_samples
from repro.core.config import AggregateMethod
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    Progress,
)
from repro.core.results import AggregateResult, OperatorNode
from repro.errors import PlanningError
from repro.frameql.analyzer import AggregateQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.obs.trace import operator_scope
from repro.optimizer.base import CostEstimate, PhysicalPlan
from repro.optimizer.operators import (
    ControlVariateSampler,
    FullScan,
    RandomSampler,
    SpecializedInference,
    TrackAggregator,
)
from repro.optimizer.operators.common import finalize_aggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics

#: Slack on the CLT sample-size estimate ``(z * sigma / epsilon)^2``: the
#: sampler stops on the *sample* standard deviation, which fluctuates around
#: the catalog's held-out sigma.
_CLT_SLACK = 2.0

#: Assumed detector/specialized-NN correlation for pricing the control-variate
#: candidate before any model has been trained (the paper reports 0.8+ on its
#: workloads).  Used only for ranking, never for bounding.
ASSUMED_CV_CORRELATION = 0.8


def sampling_calls_estimate(
    num_frames: int,
    count_std: float,
    error_tolerance: float,
    confidence: float,
    value_range: float,
) -> int:
    """Upper estimate of adaptive-sampling detector calls.

    Adds the CLT sample size for the catalog's held-out count deviation (with
    slack for sample-sigma fluctuation) to one growth round of overshoot, and
    never exceeds the population: sampling is without replacement.
    """
    initial = min(epsilon_net_minimum_samples(value_range, error_tolerance), num_frames)
    batch = max(50, initial // 2)
    if count_std <= 0.0:
        # Zero observed variance: the CLT bound fires at the first check.
        return min(num_frames, initial)
    z = float(scipy_stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    clt_samples = math.ceil((z * count_std / error_tolerance) ** 2 * _CLT_SLACK)
    return min(num_frames, max(initial, clt_samples) + batch)


class AggregateQueryPlan(PhysicalPlan):
    """Adaptive plan for ``FCOUNT`` / ``COUNT`` aggregate queries."""

    def __init__(
        self,
        spec: AggregateQuerySpec,
        hints: QueryHints | None = None,
        method: AggregateMethod | None = None,
    ) -> None:
        if spec.object_class is None and spec.aggregate != "count_distinct":
            raise PlanningError(
                "aggregate queries must constrain a single object class "
                "(WHERE class = '<name>')"
            )
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()
        #: Forced execution strategy; ``None`` follows the engine
        #: configuration (``AUTO`` runs Algorithm 1's accuracy gate).
        self.method = method
        self._scan = FullScan()
        self._tracks = TrackAggregator(iou_threshold=0.7, max_gap=1)
        self._specialized = SpecializedInference(spec)
        self._sampler = RandomSampler(spec)
        self._control_variates = ControlVariateSampler(spec)

    def describe(self) -> str:
        forced = f", method={self.method.value}" if self.method is not None else ""
        return (
            f"AggregateQueryPlan(aggregate={self.spec.aggregate}, "
            f"class={self.spec.object_class}, error={self.spec.error_tolerance}"
            f"{forced})"
        )

    # -- planning surface ----------------------------------------------------------

    def _effective_method(self, context: ExecutionContext) -> AggregateMethod:
        """The strategy to run: the plan's override, else the engine config."""
        if self.method is not None:
            return self.method
        return context.config.aggregate_method

    def _exact_only(self) -> bool:
        return (
            self.spec.error_tolerance is None
            or self.spec.aggregate == "count_distinct"
        )

    def operator_tree(
        self,
        num_frames: int | None = None,
        stats: VideoStatistics | None = None,
    ) -> OperatorNode:
        spec = self.spec
        scan_calls: int | None = None
        scan_seconds: float | None = None
        sampler_calls: int | None = None
        sampler_seconds: float | None = None
        cv_calls: int | None = None
        cv_seconds: float | None = None
        train_calls: int | None = None
        training_seconds: float | None = None
        inference_seconds: float | None = None
        if num_frames is not None and stats is not None:
            scan_calls = num_frames
            scan_seconds = stats.detector_seconds(num_frames)
            sampler_calls = self._sampling_estimate(
                num_frames, stats, control_variate=False
            )
            sampler_seconds = stats.detector_seconds(sampler_calls)
            cv_calls = self._sampling_estimate(num_frames, stats, control_variate=True)
            cv_seconds = stats.detector_seconds(cv_calls)
            train_calls = 0
            training_seconds = stats.specialized_training_seconds()
            inference_seconds = stats.specialized_inference_seconds(num_frames)

        if self._exact_only() or self.method == AggregateMethod.EXACT:
            children: tuple[OperatorNode, ...] = (
                OperatorNode(
                    "FullScan",
                    detail="detection on every frame",
                    estimated_detector_calls=scan_calls,
                    estimated_seconds=scan_seconds,
                ),
            )
            if spec.aggregate == "count_distinct":
                children += (OperatorNode("TrackAggregator", detail="IoU tracker"),)
            return OperatorNode(
                "AggregateQueryPlan",
                detail=f"aggregate={spec.aggregate}",
                children=children,
            )

        train_node = OperatorNode(
            "SpecializedInference",
            detail=f"train class={spec.object_class}",
            estimated_detector_calls=train_calls,
            estimated_seconds=training_seconds,
        )
        rewrite_node = OperatorNode(
            "QueryRewrite",
            detail="specialized NN on every unseen frame",
            estimated_detector_calls=train_calls,
            estimated_seconds=inference_seconds,
        )
        sampler_node = OperatorNode(
            "RandomSampler",
            detail="adaptive CLT-bounded sampling",
            estimated_detector_calls=sampler_calls,
            estimated_seconds=sampler_seconds,
        )
        cv_node = OperatorNode(
            "ControlVariateSampler",
            detail="adaptive CLT-bounded sampling, NN auxiliary",
            estimated_detector_calls=cv_calls,
            estimated_seconds=cv_seconds,
        )
        method = self.method
        if method == AggregateMethod.NAIVE_AQP:
            children = (sampler_node,)
        elif method == AggregateMethod.SPECIALIZED_REWRITE:
            children = (train_node, rewrite_node)
        elif method == AggregateMethod.CONTROL_VARIATES:
            children = (train_node, cv_node)
        else:
            children = (
                train_node,
                OperatorNode("BootstrapAccuracyGate", detail="Algorithm 1"),
                rewrite_node,
                cv_node,
                dataclasses.replace(
                    sampler_node, detail="fallback: too little training data"
                ),
            )
        return OperatorNode(
            "AggregateQueryPlan",
            detail=(
                f"aggregate={spec.aggregate}, class={spec.object_class}, "
                f"error={spec.error_tolerance} @ {spec.confidence:g}"
            ),
            children=children,
        )

    def _sampling_estimate(
        self,
        num_frames: int,
        stats: VideoStatistics | None,
        control_variate: bool,
    ) -> int:
        """Detector calls one sampling run is expected to stay under."""
        spec = self.spec
        if stats is None or spec.error_tolerance is None:
            # No catalog: the only certain bound is the population itself
            # (sampling is without replacement).
            return num_frames
        sigma = stats.count_std(spec.object_class)
        if control_variate:
            sigma *= math.sqrt(1.0 - ASSUMED_CV_CORRELATION**2)
        return sampling_calls_estimate(
            num_frames,
            sigma,
            spec.error_tolerance,
            spec.confidence,
            stats.value_range(spec.object_class),
        )

    def estimate_detector_calls(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> int:
        # The bound reflects ``self.method``; the cost-based optimizer bakes
        # a config-forced method into the plans it builds, so estimates and
        # execution agree.  A plan constructed directly with ``method=None``
        # but executed under a config that forces EXACT is outside this
        # bound's contract.
        if self._exact_only() or self.method == AggregateMethod.EXACT:
            return num_frames
        if self.method == AggregateMethod.SPECIALIZED_REWRITE:
            return 0
        # Sampling-based strategies (and AUTO, whose worst runtime branch is
        # control variates): bound with the full count deviation — the
        # control variate can only reduce the variance the bound prices.
        return self._sampling_estimate(num_frames, stats, control_variate=False)

    def estimate_cost(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> CostEstimate:
        base = super().estimate_cost(num_frames, stats)
        trains = self.method in (
            None,
            AggregateMethod.AUTO,
            AggregateMethod.SPECIALIZED_REWRITE,
            AggregateMethod.CONTROL_VARIATES,
        )
        if self._exact_only() or stats is None or not trains:
            return base
        return CostEstimate(
            detector_calls=base.detector_calls,
            detector_seconds=base.detector_seconds,
            training_seconds=stats.specialized_training_seconds(),
            inference_seconds=stats.specialized_inference_seconds(num_frames),
        )

    # -- entry point ---------------------------------------------------------------

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        """Algorithm 1's decision procedure, as an event stream."""
        spec = self.spec
        ledger = ExecutionLedger()
        method = self._effective_method(context)
        yield Progress(
            phase="plan_selection", total_frames=context.video.num_frames
        )

        if spec.aggregate == "count_distinct":
            result = yield from self._stream_exact(context, control, ledger)
        elif spec.error_tolerance is None or method == AggregateMethod.EXACT:
            result = yield from self._stream_exact(context, control, ledger)
        elif method == AggregateMethod.NAIVE_AQP:
            with self._sampler.traced(context, ledger):
                result = yield from self._sampler.stream(context, control, ledger)
        else:
            result = yield from self._stream_specialized(
                context, control, ledger, method
            )
        # The sampling loops honour the detector budget by capping their
        # sample count, which ends them through the normal "population
        # exhausted" exit; attribute the early finish to the budget here.
        if control.stop_reason is None and control.out_of_budget(ledger):
            control.note_stop("max_detector_calls")
        yield Completed(result, stop_reason=control.stop_reason)

    def _stream_specialized(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        method: AggregateMethod,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        spec = self.spec
        labeled = context.labeled_set
        enough_data = (
            labeled is not None
            and labeled.training_positives(spec.object_class)
            >= context.config.min_training_positives
        )
        if not enough_data:
            if method in (
                AggregateMethod.SPECIALIZED_REWRITE,
                AggregateMethod.CONTROL_VARIATES,
            ):
                raise PlanningError(
                    f"not enough training data for class {spec.object_class!r} to "
                    f"force {method.value}; the training day has too few positives"
                )
            with self._sampler.traced(context, ledger):
                return (yield from self._sampler.stream(context, control, ledger))

        yield Progress(phase="train_specialized_nn")
        with self._specialized.traced(context, ledger):
            model = self._specialized.train(context, ledger)
        if method == AggregateMethod.SPECIALIZED_REWRITE:
            with operator_scope(context, "QueryRewrite", ledger):
                return (
                    yield from self._specialized.stream_rewrite(
                        context, control, ledger, model
                    )
                )
        if method == AggregateMethod.CONTROL_VARIATES:
            with self._control_variates.traced(context, ledger):
                return (
                    yield from self._control_variates.stream(
                        context, control, ledger, model
                    )
                )

        # AUTO: Algorithm 1's accuracy gate.
        yield Progress(phase="accuracy_gate")
        with operator_scope(context, "BootstrapAccuracyGate", ledger):
            rewrite_ok = self._specialized.rewrite_within_tolerance(
                context, ledger, model
            )
        if rewrite_ok:
            with operator_scope(context, "QueryRewrite", ledger):
                return (
                    yield from self._specialized.stream_rewrite(
                        context, control, ledger, model
                    )
                )
        with self._control_variates.traced(context, ledger):
            return (
                yield from self._control_variates.stream(
                    context, control, ledger, model
                )
            )

    # -- exhaustive strategy -----------------------------------------------------------

    def _stream_exact(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        spec = self.spec
        object_class = spec.object_class
        num_frames = context.video.num_frames
        if spec.aggregate == "count_distinct":
            with self._scan.traced(context, ledger):
                results = yield from self._scan.stream_detections(
                    context, control, ledger
                )
            with self._tracks.traced(context, ledger):
                value = self._tracks.distinct_count(results, object_class)
            scanned = len(results)
            partial_note = "distinct count covers only the scanned prefix"
        else:
            assert object_class is not None  # enforced at plan construction
            with self._scan.traced(context, ledger):
                counts, scanned = yield from self._scan.stream_counts(
                    context,
                    control,
                    ledger,
                    object_class,
                    emit=lambda mean, taken: EstimateUpdate(
                        estimate=finalize_aggregate(spec, mean, num_frames),
                        half_width=0.0,
                        samples_used=taken,
                        confidence=spec.confidence,
                    ),
                )
            mean = float(counts.mean()) if counts.size else 0.0
            value = finalize_aggregate(spec, mean, num_frames)
            partial_note = "value computed from the scanned prefix only"
        description = "exact: object detection on every frame"
        if scanned < num_frames:
            description += (
                f" (stopped early: {scanned}/{num_frames} frames scanned; "
                f"{partial_note})"
            )
        return AggregateResult(
            kind="aggregate",
            method="exact",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=description,
            value=value,
            error_tolerance=spec.error_tolerance,
            confidence=spec.confidence,
            samples_used=scanned,
        )
