"""Specialized-inference operator: train a count NN and rewrite the query."""

from __future__ import annotations

from collections.abc import Generator

from repro.core.context import ExecutionContext
from repro.core.events import (
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    Progress,
)
from repro.core.results import AggregateResult
from repro.frameql.analyzer import AggregateQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.operators.base import PhysicalOperator
from repro.optimizer.operators.common import finalize_aggregate
from repro.specialization.calibration import (
    bootstrap_error_estimate,
    error_within_tolerance,
)
from repro.specialization.count_model import CountSpecializedModel


class SpecializedInference(PhysicalOperator):
    """Train a count-specialized NN and run it over every unseen frame.

    The query-rewriting stage of Algorithm 1: training on the labeled set,
    the bootstrap accuracy gate on the held-out day, and the full-video
    inference pass that replaces the detector entirely when the gate passes.
    The trained model doubles as the auxiliary variable for
    :class:`~repro.optimizer.operators.sampling.ControlVariateSampler`.
    """

    name = "SpecializedInference"

    def __init__(self, spec: AggregateQuerySpec) -> None:
        self.spec = spec

    def describe(self) -> str:
        return f"SpecializedInference(class={self.spec.object_class})"

    def train(
        self, context: ExecutionContext, ledger: ExecutionLedger
    ) -> CountSpecializedModel:
        """Train the count-specialized NN on the labeled set's training day."""
        assert self.spec.object_class is not None  # enforced at plan construction
        labeled = context.require_labeled_set()
        model = CountSpecializedModel(
            object_class=self.spec.object_class,
            model_type=context.config.specialized_model_type,
            hidden_size=context.config.specialized_hidden_size,
            training_config=context.config.training,
            seed=context.config.seed,
        )
        training_ledger = ledger if context.config.include_training_time else None
        model.fit(
            labeled.train_features,
            labeled.train_counts(self.spec.object_class),
            training_ledger,
        )
        return model

    def rewrite_within_tolerance(
        self,
        context: ExecutionContext,
        ledger: ExecutionLedger,
        model: CountSpecializedModel,
    ) -> bool:
        """Algorithm 1's accuracy gate: bootstrap the held-out rewrite error."""
        assert self.spec.error_tolerance is not None  # the gate implies a bound
        labeled = context.require_labeled_set()
        threshold_ledger = ledger if context.config.include_training_time else None
        predictions = model.predict_counts(labeled.heldout_features, threshold_ledger)
        truths = labeled.heldout_counts(self.spec.object_class)
        errors = bootstrap_error_estimate(predictions, truths, seed=context.config.seed)
        return error_within_tolerance(
            errors, self.spec.error_tolerance, self.spec.confidence
        )

    def stream_rewrite(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        model: CountSpecializedModel,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        """Rewrite the query: evaluate the NN on every unseen frame."""
        spec = self.spec
        num_frames = context.video.num_frames
        features = context.test_features()
        yield Progress(
            phase="specialized_inference",
            frames_scanned=ledger.frames_decoded,
            detector_calls=ledger.detector_calls,
            total_frames=num_frames,
        )
        mean_count = model.mean_count(features, ledger)
        yield EstimateUpdate(
            estimate=finalize_aggregate(spec, mean_count, num_frames),
            half_width=0.0,
            samples_used=num_frames,
            confidence=spec.confidence,
        )
        return AggregateResult(
            kind="aggregate",
            method="specialized_rewrite",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                "query rewriting: specialized NN evaluated on every unseen frame"
            ),
            value=finalize_aggregate(spec, mean_count, num_frames),
            error_tolerance=spec.error_tolerance,
            confidence=spec.confidence,
            samples_used=num_frames,
        )
