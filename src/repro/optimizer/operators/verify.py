"""Detector-verification operator: chunked verification down a ranking."""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.events import (
    ExecutionControl,
    ExecutionEvent,
    Progress,
    ScrubbingHit,
)
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.operators.base import PhysicalOperator
from repro.scrubbing.importance import ScrubbingResult, ScrubState


class DetectorVerifier(PhysicalOperator):
    """Verify candidate frames with the full detector, in ranked order.

    Chunks of eligible candidates (not yet accepted, gap-respecting) are
    assembled up to the control's budget-trimmed batch allowance and verified
    with a single :meth:`~repro.core.context.ExecutionContext.detect_batch`
    call.  Acceptance decisions are then replayed in rank order through the
    same :class:`~repro.scrubbing.importance.ScrubState` bookkeeping the
    scalar walk uses, so the returned frames are identical for every batch
    size: an acceptance inside a chunk can invalidate a later in-chunk
    candidate (its prefetched detection is simply discarded — the documented
    chunking overshoot), never admit one the scalar path would have rejected.

    State accumulates in the caller's :class:`ScrubbingResult`, so a second
    ``stream`` call over a different candidate order *resumes* the run (the
    scrubbing plan's exhaustive fallback sweep after an importance scan).
    """

    name = "DetectorVerifier"

    def __init__(self, min_counts: dict[str, int], gap: int = 0) -> None:
        self.min_counts = min_counts
        self.gap = gap

    def describe(self) -> str:
        predicate = " AND ".join(
            f"{cls}>={count}" for cls, count in sorted(self.min_counts.items())
        )
        return f"DetectorVerifier({predicate}, gap={self.gap})"

    def stream(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        candidate_order: np.ndarray,
        limit: int,
        result: ScrubbingResult,
    ) -> Generator[ExecutionEvent, None, None]:
        """Verify candidates in ranked order, one detector batch per chunk."""
        min_counts = self.min_counts
        state = ScrubState(result, limit=limit, gap=self.gap)
        candidates = np.asarray(candidate_order, dtype=np.int64)
        position = 0
        while position < candidates.size and not state.satisfied:
            if control.should_stop(ledger):
                return
            # Chunks are trimmed to the remaining hit budget as well as the
            # detector budget: a run with a tighter LIMIT can never spend
            # more detector calls than one with a looser LIMIT, and each
            # chunk can waste at most (remaining limit - 1) prefetched
            # detections.
            allowance = min(control.batch_allowance(ledger), limit - state.hits)
            chunk: list[int] = []
            while position < candidates.size and len(chunk) < allowance:
                frame = int(candidates[position])
                position += 1
                if state.eligible(frame):
                    chunk.append(frame)
            if not chunk:
                continue
            chunk_results = context.detect_batch(chunk, ledger)
            for frame, detection in zip(chunk, chunk_results, strict=True):
                if state.satisfied:
                    break
                if not state.eligible(frame):
                    continue
                verified = state.examine(
                    frame,
                    all(
                        detection.count(object_class) >= min_count
                        for object_class, min_count in min_counts.items()
                    ),
                )
                if verified:
                    yield ScrubbingHit(
                        frame_index=frame,
                        timestamp=context.video.timestamp_of(frame),
                        hits_so_far=state.hits,
                        limit=limit,
                    )
            yield Progress(
                phase="verification",
                frames_scanned=ledger.frames_decoded,
                detector_calls=ledger.detector_calls,
                total_frames=context.video.num_frames,
            )
