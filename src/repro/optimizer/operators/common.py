"""Shared helpers for the aggregate-query operators.

These small pure functions encode unit conventions every aggregate stage must
agree on (per-frame means vs totals, CI half-width scaling) and the
labeled-set-derived sampling parameters; they live here so ``FullScan``,
``RandomSampler``, ``ControlVariateSampler`` and ``SpecializedInference`` all
share one definition.
"""

from __future__ import annotations

from repro.aqp.sampling import AdaptiveSamplingConfig
from repro.core.context import ExecutionContext
from repro.core.events import ExecutionControl
from repro.frameql.analyzer import AggregateQuerySpec
from repro.metrics.runtime import ExecutionLedger


def finalize_aggregate(
    spec: AggregateQuerySpec, mean_per_frame: float, num_frames: int
) -> float:
    """Convert the frame-averaged mean to the query's requested statistic."""
    if spec.aggregate in ("fcount", "avg"):
        return mean_per_frame
    if spec.aggregate == "count":
        return mean_per_frame * num_frames
    return mean_per_frame


def width_scale(spec: AggregateQuerySpec, num_frames: int) -> float:
    """Factor putting CI half-widths in the streamed estimate's units.

    :func:`finalize_aggregate` scales ``COUNT`` estimates from per-frame means
    to totals; events and ``ci_width`` stop checks must scale the half-width
    identically or "estimate ± half_width" would be off by ``num_frames``.
    The result's ``half_width`` field stays in per-frame units, matching the
    blocking API's historical contract.
    """
    return float(num_frames) if spec.aggregate == "count" else 1.0


def count_value_range(spec: AggregateQuerySpec, context: ExecutionContext) -> float:
    """``K``: the range of the per-frame count, from the labeled set."""
    labeled = context.labeled_set
    if labeled is not None and spec.object_class is not None:
        train_max = int(labeled.train_counts(spec.object_class).max(initial=0))
        heldout_max = int(labeled.heldout_counts(spec.object_class).max(initial=0))
        return float(max(train_max, heldout_max) + 1)
    return 2.0


def budget_sampling_config(
    control: ExecutionControl, ledger: ExecutionLedger
) -> AdaptiveSamplingConfig | None:
    """Default sampling knobs, with the detector budget folded into the cap."""
    budget = control.stop.max_detector_calls
    if budget is None:
        return None
    return AdaptiveSamplingConfig(max_samples=max(1, budget - ledger.detector_calls))
