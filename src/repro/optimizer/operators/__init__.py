"""The composable physical operator library.

Each operator is one reusable, ``_stream``-compatible stage extracted from
the monolithic plan bodies; the four plan classes are now compositions over
this catalog, and the cost-based optimizer enumerates alternative operator
trees built from it:

===========================  ====================================================
Operator                     Role
===========================  ====================================================
:class:`FullScan`            exhaustive detection over every frame
:class:`SpecializedInference` train a count NN; rewrite the query with it
:class:`RandomSampler`       traditional AQP with the CLT stopping rule
:class:`ControlVariateSampler` variance-reduced sampling (NN as auxiliary)
:class:`ImportanceOrderedScan` rank frames by NN conjunction confidence
:class:`FilterCascade`       calibrated no-false-negative frame filters
:class:`DetectorVerifier`    chunked detector verification down a ranking
:class:`TrackAggregator`     IoU track resolution and record materialisation
===========================  ====================================================
"""

from repro.optimizer.operators.base import PhysicalOperator
from repro.optimizer.operators.filters import FilterCascade, detection_matches
from repro.optimizer.operators.importance import ImportanceOrderedScan
from repro.optimizer.operators.sampling import ControlVariateSampler, RandomSampler
from repro.optimizer.operators.scan import FullScan
from repro.optimizer.operators.specialized import SpecializedInference
from repro.optimizer.operators.tracks import TrackAggregator
from repro.optimizer.operators.verify import DetectorVerifier

__all__ = [
    "PhysicalOperator",
    "FullScan",
    "SpecializedInference",
    "RandomSampler",
    "ControlVariateSampler",
    "ImportanceOrderedScan",
    "FilterCascade",
    "DetectorVerifier",
    "TrackAggregator",
    "detection_matches",
]
