"""Physical operator base: composable, stream-compatible plan stages.

A :class:`PhysicalOperator` is one reusable stage of a physical plan — a
detection scan, a sampler, a filter cascade, a verifier.  Operators expose
generator methods that yield the same typed
:class:`~repro.core.events.ExecutionEvent` objects as plan ``_stream``
implementations (and return their stage result via ``StopIteration.value``),
so plans compose them with ``yield from`` without changing the streaming
protocol, chunked batching, or early-termination semantics.

Operators hold only query parameters: all execution state (video, detector,
ledger, RNG) arrives through the :class:`~repro.core.context.ExecutionContext`
and :class:`~repro.core.events.ExecutionControl` at stream time, which is what
makes one operator instance reusable across executions.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, ClassVar, ContextManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ExecutionContext
    from repro.metrics.runtime import RuntimeLedger


class PhysicalOperator:
    """Base class for the composable operator library."""

    #: Operator name as shown in operator trees and the README catalog.
    name: ClassVar[str] = "PhysicalOperator"

    def describe(self) -> str:
        """Human-readable one-line description of the operator."""
        return self.name

    def traced(
        self,
        context: "ExecutionContext",
        ledger: "RuntimeLedger | None" = None,
    ) -> ContextManager[Any]:
        """A span covering this operator's work in one execution.

        Plans wrap each operator invocation in ``with op.traced(context,
        ledger):`` — when the context carries no tracer (the default) this is
        a shared no-op context manager; when tracing is on, the span records
        the operator's wall time and, given the execution ledger, its actual
        charged detector calls for EXPLAIN ANALYZE.  The ``with`` form
        guarantees the span closes on every exception path (analyzer rule
        RPR008).
        """
        tracer = context.tracer
        if tracer is None:
            return nullcontext()
        return tracer.operator_span(self.name, ledger)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
