"""Physical operator base: composable, stream-compatible plan stages.

A :class:`PhysicalOperator` is one reusable stage of a physical plan — a
detection scan, a sampler, a filter cascade, a verifier.  Operators expose
generator methods that yield the same typed
:class:`~repro.core.events.ExecutionEvent` objects as plan ``_stream``
implementations (and return their stage result via ``StopIteration.value``),
so plans compose them with ``yield from`` without changing the streaming
protocol, chunked batching, or early-termination semantics.

Operators hold only query parameters: all execution state (video, detector,
ledger, RNG) arrives through the :class:`~repro.core.context.ExecutionContext`
and :class:`~repro.core.events.ExecutionControl` at stream time, which is what
makes one operator instance reusable across executions.
"""

from __future__ import annotations

from typing import ClassVar


class PhysicalOperator:
    """Base class for the composable operator library."""

    #: Operator name as shown in operator trees and the README catalog.
    name: ClassVar[str] = "PhysicalOperator"

    def describe(self) -> str:
        """Human-readable one-line description of the operator."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
