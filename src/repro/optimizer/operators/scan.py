"""Full-scan operator: exhaustive detection over every frame."""

from __future__ import annotations

from collections.abc import Callable, Generator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.events import ExecutionControl, ExecutionEvent, Progress
from repro.detection.base import DetectionResult
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.operators.base import PhysicalOperator


class FullScan(PhysicalOperator):
    """Run the object detector over every frame, in control-sized batches.

    The always-available, always-correct baseline stage: used directly by the
    exact plan, by aggregates without an error tolerance, and by
    ``COUNT(DISTINCT trackid)``.  Batches shrink to the control's remaining
    detector budget and the scan checks stop conditions at every boundary, so
    truncated scans still hand back a well-formed prefix.
    """

    name = "FullScan"

    def stream_detections(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
    ) -> Generator[ExecutionEvent, None, list[DetectionResult]]:
        """Scan frames in order, returning every frame's detection result."""
        num_frames = context.video.num_frames
        # Shard-aware entry: under parallel execution this starts one
        # prefetch worker per shard; the scan consumes shards front-to-back,
        # so the speculation window is lifted (monotone access).
        context.announce_access_plan(np.arange(num_frames), monotone=True)
        results: list[DetectionResult] = []
        while len(results) < num_frames and not control.should_stop(ledger):
            stop_at = min(num_frames, len(results) + control.batch_allowance(ledger))
            results.extend(
                context.detect_batch(np.arange(len(results), stop_at), ledger)
            )
            yield Progress(
                phase="detection_scan",
                frames_scanned=ledger.frames_decoded,
                detector_calls=ledger.detector_calls,
                total_frames=num_frames,
            )
        return results

    def stream_counts(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        object_class: str,
        emit: Callable[[float, int], ExecutionEvent],
    ) -> Generator[ExecutionEvent, None, tuple[np.ndarray, int]]:
        """Scan frames in order, accumulating one class's per-frame counts.

        ``emit(running_mean, scanned)`` builds the per-chunk estimate event
        (the aggregate plan supplies its unit conversion), keeping the exact
        event cadence of the historical in-plan loop: one ``Progress`` and one
        estimate event per chunk.
        """
        num_frames = context.video.num_frames
        context.announce_access_plan(np.arange(num_frames), monotone=True)
        count_chunks: list[np.ndarray] = []
        scanned = 0
        running_sum = 0.0
        while scanned < num_frames and not control.should_stop(ledger):
            stop_at = min(num_frames, scanned + control.batch_allowance(ledger))
            chunk = context.detect_counts_batch(
                np.arange(scanned, stop_at), object_class, ledger
            )
            count_chunks.append(chunk)
            running_sum += float(chunk.sum())
            scanned = stop_at
            yield Progress(
                phase="detection_scan",
                frames_scanned=ledger.frames_decoded,
                detector_calls=ledger.detector_calls,
                total_frames=num_frames,
            )
            yield emit(running_sum / scanned, scanned)
        counts = (
            np.concatenate(count_chunks)
            if count_chunks
            else np.empty(0, dtype=np.float64)
        )
        return counts, scanned
