"""Track-aggregation operator: identity resolution and record materialisation."""

from __future__ import annotations

from repro.detection.base import DetectionResult
from repro.frameql.schema import FrameRecord
from repro.optimizer.operators.base import PhysicalOperator
from repro.tracking.iou_tracker import IoUTracker
from repro.tracking.track import ResolvedTrack


class TrackAggregator(PhysicalOperator):
    """Resolve track identities over detection results with the IoU tracker.

    The shared tail stage of every record-producing plan: exact scans and
    selections resolve tracks before materialising FrameQL records, and
    ``COUNT(DISTINCT trackid)`` reduces the resolved tracks to a count.
    Plans that subsample frames pass a looser IoU threshold and a larger gap,
    since objects move further between processed frames.
    """

    name = "TrackAggregator"

    def __init__(self, iou_threshold: float = 0.7, max_gap: int = 1) -> None:
        self.iou_threshold = iou_threshold
        self.max_gap = max_gap

    def describe(self) -> str:
        return f"TrackAggregator(iou={self.iou_threshold}, gap={self.max_gap})"

    def resolve(self, results: list[DetectionResult]) -> list[ResolvedTrack]:
        """Resolve track identities over per-frame detection results."""
        tracker = IoUTracker(iou_threshold=self.iou_threshold, max_gap=self.max_gap)
        return tracker.resolve(results)

    def distinct_count(
        self, results: list[DetectionResult], object_class: str | None
    ) -> float:
        """``COUNT(DISTINCT trackid)``: resolved tracks, optionally one class."""
        tracks = self.resolve(results)
        if object_class is not None:
            tracks = [t for t in tracks if t.object_class == object_class]
        return float(len(tracks))

    def materialize(self, tracks: list[ResolvedTrack]) -> list[FrameRecord]:
        """Materialise one FrameQL record per tracked detection."""
        records: list[FrameRecord] = []
        for track in tracks:
            for det in track.detections:
                records.append(
                    FrameRecord(
                        timestamp=det.timestamp,
                        frame_index=det.frame_index,
                        object_class=det.object_class,
                        mask=det.box,
                        trackid=track.track_id,
                        features=det.features,
                        confidence=det.confidence,
                        color=det.color,
                        color_name=det.color_name,
                    )
                )
        return records
