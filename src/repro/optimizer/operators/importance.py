"""Importance-ordered scan operator: specialized-NN frame ranking."""

from __future__ import annotations

import numpy as np

from repro.core.context import ExecutionContext
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.operators.base import PhysicalOperator
from repro.specialization.multiclass import MultiClassCountModel


class ImportanceOrderedScan(PhysicalOperator):
    """Rank frames by specialized-NN conjunction confidence, best first.

    The planning half of the scrubbing strategy (Section 7.1): a multi-head
    count model (one head per queried class, for class-imbalance reasons) is
    trained on the labeled set and scores every unseen frame with the sum of
    per-class ``P(count >= N)`` confidences.  ``indexed`` reproduces the
    "BlazeIt (indexed)" variant of Figure 6: the NN is assumed trained and
    evaluated ahead of time, so neither cost is charged to this query.
    """

    name = "ImportanceOrderedScan"

    def __init__(self, min_counts: dict[str, int], indexed: bool = False) -> None:
        self.min_counts = min_counts
        self.indexed = indexed

    def describe(self) -> str:
        mode = "pre-indexed" if self.indexed else "trained per query"
        return f"ImportanceOrderedScan(classes={sorted(self.min_counts)}, {mode})"

    def order(
        self, context: ExecutionContext, ledger: ExecutionLedger
    ) -> np.ndarray:
        """Frames ranked by specialized-NN conjunction confidence, best first."""
        labeled = context.require_labeled_set()
        training_ledger = (
            ledger
            if (context.config.include_training_time and not self.indexed)
            else None
        )
        model = MultiClassCountModel(
            object_classes=sorted(self.min_counts),
            model_type=context.config.specialized_model_type,
            training_config=context.config.training,
            seed=context.config.seed,
        )
        counts_per_class = {
            object_class: labeled.train_counts(object_class)
            for object_class in self.min_counts
        }
        model.fit(labeled.train_features, counts_per_class, training_ledger)

        inference_ledger = None if self.indexed else ledger
        scores = model.score_conjunction(
            context.test_features(), self.min_counts, inference_ledger
        )
        return np.argsort(-np.asarray(scores, dtype=np.float64), kind="stable")
