"""Filter-cascade operator and the shared object-level predicate evaluator."""

from __future__ import annotations

import numpy as np

from repro.core.context import ExecutionContext
from repro.detection.base import Detection
from repro.frameql.analyzer import SelectionQuerySpec
from repro.metrics.runtime import RuntimeLedger
from repro.optimizer.operators.base import PhysicalOperator
from repro.selection.inference import FilterInferenceInputs, infer_selection_plan
from repro.selection.plan import SelectionPlan
from repro.udf.registry import UDFRegistry

_OP_FUNCS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def detection_matches(
    detection: Detection, spec: SelectionQuerySpec, udf_registry: UDFRegistry
) -> bool:
    """Whether one detection satisfies the query's object-level predicates."""
    if spec.object_class is not None and detection.object_class != spec.object_class:
        return False
    box = detection.box
    if spec.min_area is not None and box.area <= spec.min_area:
        return False
    if spec.max_area is not None and box.area >= spec.max_area:
        return False
    for constraint in spec.spatial_constraints:
        extent = {
            "xmin": box.x_min,
            "xmax": box.x_max,
            "ymin": box.y_min,
            "ymax": box.y_max,
        }[constraint.axis]
        if not _OP_FUNCS[constraint.op](extent, constraint.value):
            return False
    for predicate in spec.udf_predicates:
        udf = udf_registry.get(predicate.udf_name)
        value = udf.object_fn(detection)
        if not _OP_FUNCS[predicate.op](value, predicate.value):
            return False
    return True


class FilterCascade(PhysicalOperator):
    """Infer and apply the cheapest-first frame-filter pipeline (Section 8.1).

    Calibrates the applicable filter classes (temporal, spatial, content,
    label) against the labeled set with no-false-negative thresholds, so the
    cascade can only discard frames that would not have matched — selection
    plans verify every survivor with the detector, keeping the paper's
    "false negatives only" error accounting.
    """

    name = "FilterCascade"

    def __init__(
        self,
        spec: SelectionQuerySpec,
        enabled_filter_classes: set[str] | None,
    ) -> None:
        self.spec = spec
        self.enabled_filter_classes = enabled_filter_classes

    def describe(self) -> str:
        enabled = (
            ", ".join(sorted(self.enabled_filter_classes))
            if self.enabled_filter_classes is not None
            else "all"
        )
        return f"FilterCascade(classes={enabled})"

    def build(
        self, context: ExecutionContext, ledger: RuntimeLedger
    ) -> SelectionPlan:
        """Infer the calibrated filter pipeline for this query and video."""
        if self.enabled_filter_classes is not None and not self.enabled_filter_classes:
            return SelectionPlan()
        labeled = context.labeled_set
        if labeled is None:
            # No labeled set: only query-derived (temporal/spatial) filters can
            # be inferred, and only when explicitly enabled.
            return SelectionPlan()
        inputs = self._inference_inputs(context)
        training_ledger = ledger if context.config.include_training_time else None
        return infer_selection_plan(
            spec=self.spec,
            unseen_video=context.video,
            inputs=inputs,
            ledger=training_ledger,
            training_config=context.config.training,
            enabled_filter_classes=self.enabled_filter_classes,
            model_type=context.config.specialized_model_type,
        )

    def _inference_inputs(self, context: ExecutionContext) -> FilterInferenceInputs:
        labeled = context.require_labeled_set()
        object_class = self.spec.object_class
        if object_class is not None:
            train_presence = labeled.train_presence(object_class)
            heldout_presence = labeled.heldout_presence(object_class)
        else:
            train_presence = np.ones(labeled.train_video.num_frames, dtype=bool)
            heldout_presence = np.ones(labeled.heldout_video.num_frames, dtype=bool)
        heldout_positive_mask = self._heldout_positive_mask(context)
        return FilterInferenceInputs(
            train_video=labeled.train_video,
            heldout_video=labeled.heldout_video,
            train_features=labeled.train_features,
            heldout_features=labeled.heldout_features,
            train_presence=train_presence,
            heldout_presence=heldout_presence,
            heldout_positive_mask=heldout_positive_mask,
        )

    def _heldout_positive_mask(self, context: ExecutionContext) -> np.ndarray:
        """Held-out frames whose recorded detections satisfy the full predicate."""
        labeled = context.require_labeled_set()
        recorded = labeled.heldout_recorded
        mask = np.zeros(recorded.num_frames, dtype=bool)
        for frame_index in range(recorded.num_frames):
            result = recorded.result(frame_index)
            mask[frame_index] = any(
                detection_matches(det, self.spec, context.udf_registry)
                for det in result.detections
            )
        return mask
