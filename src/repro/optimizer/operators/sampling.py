"""Sampling operators: plain adaptive AQP and control-variate estimation."""

from __future__ import annotations

from collections.abc import Generator

from repro.aqp.control_variates import control_variate_stream
from repro.aqp.sampling import adaptive_sample_stream
from repro.core.context import ExecutionContext
from repro.core.events import EstimateUpdate, ExecutionControl, ExecutionEvent
from repro.core.results import AggregateResult
from repro.frameql.analyzer import AggregateQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.operators.base import PhysicalOperator
from repro.optimizer.operators.common import (
    budget_sampling_config,
    count_value_range,
    finalize_aggregate,
    width_scale,
)
from repro.specialization.count_model import CountSpecializedModel


class RandomSampler(PhysicalOperator):
    """Traditional AQP: uniform sampling with the CLT stopping rule.

    Samples frames without replacement from an epsilon-net minimum, calling
    the detector on each sampled frame, until the CLT bound certifies the
    query's error tolerance at its confidence — the paper's Section 6.1
    baseline and the fallback when specialization has too little training
    data.
    """

    name = "RandomSampler"

    def __init__(self, spec: AggregateQuerySpec) -> None:
        self.spec = spec

    def describe(self) -> str:
        return (
            f"RandomSampler(class={self.spec.object_class}, "
            f"error={self.spec.error_tolerance})"
        )

    def stream(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        spec = self.spec
        assert spec.error_tolerance is not None  # sampling implies a tolerance
        object_class = spec.object_class
        assert object_class is not None  # enforced at plan construction
        num_frames = context.video.num_frames
        value_range = count_value_range(spec, context)
        scale = width_scale(spec, num_frames)
        result = None
        for round_ in adaptive_sample_stream(
            sample_fn=lambda idx: context.detect_counts_batch(
                idx, object_class, ledger
            ),
            population_size=num_frames,
            error_tolerance=spec.error_tolerance,
            confidence=spec.confidence,
            value_range=value_range,
            rng=context.rng,
            config=budget_sampling_config(control, ledger),
            should_stop=lambda taken, hw: control.should_stop(
                ledger, half_width=hw * scale
            ),
            # Shard-aware entry: the permutation is the detector workload;
            # parallel shard workers prefetch it while the rounds replay the
            # identical sequential estimator.
            announce=context.announce_access_plan,
        ):
            yield EstimateUpdate(
                estimate=finalize_aggregate(spec, round_.estimate, num_frames),
                half_width=round_.half_width * scale,
                samples_used=round_.samples_used,
                confidence=spec.confidence,
            )
            if round_.done:
                result = round_.result
        assert result is not None
        return AggregateResult(
            kind="aggregate",
            method="naive_aqp",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                f"adaptive sampling (epsilon-net start, CLT stop), "
                f"K={value_range:.0f}"
            ),
            value=finalize_aggregate(spec, result.estimate, num_frames),
            error_tolerance=spec.error_tolerance,
            confidence=spec.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
        )


class ControlVariateSampler(PhysicalOperator):
    """Variance-reduced sampling with the specialized NN as control variate.

    The NN's expected counts over every unseen frame are the cheap auxiliary
    variable; the detector is sampled adaptively until the variance-reduced
    CLT bound meets the query's tolerance (Section 6.3).
    """

    name = "ControlVariateSampler"

    def __init__(self, spec: AggregateQuerySpec) -> None:
        self.spec = spec

    def describe(self) -> str:
        return (
            f"ControlVariateSampler(class={self.spec.object_class}, "
            f"error={self.spec.error_tolerance})"
        )

    def stream(
        self,
        context: ExecutionContext,
        control: ExecutionControl,
        ledger: ExecutionLedger,
        model: CountSpecializedModel,
    ) -> Generator[ExecutionEvent, None, AggregateResult]:
        spec = self.spec
        assert spec.error_tolerance is not None  # sampling implies a tolerance
        object_class = spec.object_class
        assert object_class is not None  # enforced at plan construction
        num_frames = context.video.num_frames
        features = context.test_features()
        auxiliary = model.expected_counts(features, ledger)
        value_range = count_value_range(spec, context)
        scale = width_scale(spec, num_frames)
        result = None
        for round_ in control_variate_stream(
            sample_fn=lambda idx: context.detect_counts_batch(
                idx, object_class, ledger
            ),
            auxiliary_values=auxiliary,
            error_tolerance=spec.error_tolerance,
            confidence=spec.confidence,
            value_range=value_range,
            rng=context.rng,
            config=budget_sampling_config(control, ledger),
            should_stop=lambda taken, hw: control.should_stop(
                ledger, half_width=hw * scale
            ),
            announce=context.announce_access_plan,
        ):
            yield EstimateUpdate(
                estimate=finalize_aggregate(spec, round_.estimate, num_frames),
                half_width=round_.half_width * scale,
                samples_used=round_.samples_used,
                confidence=spec.confidence,
            )
            if round_.done:
                result = round_.result
        assert result is not None
        return AggregateResult(
            kind="aggregate",
            method="control_variates",
            ledger=ledger,
            detection_calls=ledger.call_count(context.detector.cost.name),
            plan_description=(
                "control variates: specialized NN as the auxiliary variable, "
                f"correlation={result.correlation:.2f}"
            ),
            value=finalize_aggregate(spec, result.estimate, num_frames),
            error_tolerance=spec.error_tolerance,
            confidence=spec.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
            correlation=result.correlation,
        )
