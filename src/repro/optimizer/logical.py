"""The logical plan layer: what a query computes, before deciding how.

Analyzed :class:`~repro.frameql.analyzer.QuerySpec` objects describe a query's
*semantics*; a :class:`LogicalPlan` restates those semantics as a small
relational-style tree (scan → filter/event/aggregate → limit/materialise)
that the cost-based optimizer maps onto alternative physical operator trees.
Keeping the layer explicit — rather than dispatching physical plans straight
off the spec type — is what lets the optimizer enumerate several physical
strategies for one logical shape and price them against the statistics
catalog.

Logical nodes carry no execution state and never run; they are the stable
middle layer between the analyzer and the operator library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QueryKind,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
)


@dataclass(frozen=True)
class LogicalNode:
    """One node of a logical plan tree."""

    name: str
    detail: str = ""
    children: tuple[LogicalNode, ...] = ()

    def render(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the subtree."""
        label = f"{self.name}({self.detail})" if self.detail else self.name
        lines = ["  " * indent + label]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def flatten(self) -> list[str]:
        """Every node name in the subtree, depth first."""
        names = [self.name]
        for child in self.children:
            names.extend(child.flatten())
        return names


@dataclass(frozen=True)
class LogicalPlan:
    """A query's semantics as a logical tree, plus planning metadata.

    ``required_classes`` names the object classes whose catalog statistics
    the physical enumeration will consult; ``approximate`` records whether
    the query tolerates a bounded error (which is what unlocks the sampling
    and rewriting strategies).
    """

    kind: QueryKind
    video: str
    root: LogicalNode
    required_classes: frozenset[str]
    approximate: bool

    def describe(self) -> str:
        """One-line summary of the logical shape."""
        classes = ",".join(sorted(self.required_classes)) or "<none>"
        return (
            f"LogicalPlan(kind={self.kind.value}, video={self.video}, "
            f"classes={classes}, approximate={self.approximate})"
        )

    def render(self) -> str:
        """Multi-line rendering of the logical tree."""
        return self.root.render()


def _scan(video: str) -> LogicalNode:
    return LogicalNode("LogicalScan", detail=f"video={video}")


def _aggregate_plan(spec: AggregateQuerySpec) -> LogicalPlan:
    bound = (
        f"error<={spec.error_tolerance} @ {spec.confidence:g}"
        if spec.error_tolerance is not None
        else "exact"
    )
    root = LogicalNode(
        "LogicalAggregate",
        detail=f"{spec.aggregate}({spec.object_class or '*'}), {bound}",
        children=(
            LogicalNode(
                "LogicalClassCount",
                detail=f"class={spec.object_class}",
                children=(_scan(spec.video),),
            ),
        ),
    )
    return LogicalPlan(
        kind=QueryKind.AGGREGATE,
        video=spec.video,
        root=root,
        required_classes=spec.referenced_classes(),
        approximate=spec.error_tolerance is not None
        and spec.aggregate != "count_distinct",
    )


def _scrubbing_plan(spec: ScrubbingQuerySpec) -> LogicalPlan:
    predicate = " AND ".join(
        f"count({cls})>={count}" for cls, count in sorted(spec.min_counts.items())
    )
    root = LogicalNode(
        "LogicalLimit",
        detail=f"limit={spec.limit}, gap={spec.gap}",
        children=(
            LogicalNode(
                "LogicalEventFilter",
                detail=predicate,
                children=(_scan(spec.video),),
            ),
        ),
    )
    return LogicalPlan(
        kind=QueryKind.SCRUBBING,
        video=spec.video,
        root=root,
        required_classes=spec.referenced_classes(),
        approximate=False,
    )


def _selection_plan(spec: SelectionQuerySpec) -> LogicalPlan:
    predicates = []
    if spec.object_class is not None:
        predicates.append(f"class={spec.object_class}")
    predicates.extend(
        f"{p.udf_name}({p.column}){p.op}{p.value}" for p in spec.udf_predicates
    )
    for constraint in spec.spatial_constraints:
        predicates.append(f"{constraint.axis}{constraint.op}{constraint.value:g}")
    if spec.min_area is not None:
        predicates.append(f"area>{spec.min_area:g}")
    if spec.max_area is not None:
        predicates.append(f"area<{spec.max_area:g}")
    select = LogicalNode(
        "LogicalSelect",
        detail=", ".join(predicates),
        children=(_scan(spec.video),),
    )
    root = select
    if spec.min_track_frames is not None:
        root = LogicalNode(
            "LogicalTrackConstraint",
            detail=f"min_track_frames={spec.min_track_frames}",
            children=(select,),
        )
    return LogicalPlan(
        kind=QueryKind.SELECTION,
        video=spec.video,
        root=root,
        required_classes=spec.referenced_classes(),
        approximate=spec.fnr_within is not None or spec.fpr_within is not None,
    )


def _exact_plan(spec: ExactQuerySpec) -> LogicalPlan:
    root = LogicalNode(
        "LogicalMaterialize",
        detail=spec.reason,
        children=(_scan(spec.video),),
    )
    return LogicalPlan(
        kind=QueryKind.EXACT,
        video=spec.video,
        root=root,
        required_classes=frozenset(),
        approximate=False,
    )


def build_logical_plan(spec: QuerySpec) -> LogicalPlan:
    """Build the logical plan for an analyzed query."""
    if isinstance(spec, AggregateQuerySpec):
        return _aggregate_plan(spec)
    if isinstance(spec, ScrubbingQuerySpec):
        return _scrubbing_plan(spec)
    if isinstance(spec, SelectionQuerySpec):
        return _selection_plan(spec)
    if isinstance(spec, ExactQuerySpec):
        return _exact_plan(spec)
    raise PlanningError(
        f"no logical plan for query spec of type {type(spec).__name__}"
    )
