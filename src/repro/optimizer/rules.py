"""Compatibility wrapper preserving the historical rule-based surface.

Planning now flows through the :class:`~repro.optimizer.cost.CostBasedOptimizer`
(Section 5): logical plans, enumerated physical candidates, a statistics
catalog and a cost model.  ``RuleBasedOptimizer`` is kept because the paper's
original argument — filters and specialized NNs are orders of magnitude
cheaper than detection, so the plan structure follows from the query class —
is exactly what the cost-based optimizer reproduces when it has no statistics:
without a catalog the default candidate per query class *is* the old
rule-based mapping, and the adaptive-default preference keeps that mapping
under realistic statistics too.
"""

from __future__ import annotations

from repro.optimizer.cost import CostBasedOptimizer


class RuleBasedOptimizer(CostBasedOptimizer):
    """The historical optimizer name: cost-based planning, rule-based defaults.

    Construct with just a UDF registry for the classic behaviour (no
    statistics catalog, so every query gets its query-class default plan), or
    pass ``catalog``/``config`` to opt into cost-based selection.
    """
