"""Rule-based plan selection (Section 5).

The optimizer maps each analyzed query class to its physical plan.  Because
every specialized NN and filter runs orders of magnitude faster than object
detection (a 100,000 fps filter "would need to filter 0.003% of the frames to
be effective"), rules rather than a cost model are sufficient: the plan
structure follows from the query class and the statistical decisions are made
inside the plans from held-out data.
"""

from __future__ import annotations

from repro.errors import PlanningError, UnknownUDFError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
)
from repro.optimizer.aggregates import AggregateQueryPlan
from repro.optimizer.base import PhysicalPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.udf.registry import UDFRegistry


class RuleBasedOptimizer:
    """Chooses a physical plan for an analyzed FrameQL query."""

    def __init__(self, udf_registry: UDFRegistry) -> None:
        self.udf_registry = udf_registry

    def plan(
        self,
        spec: QuerySpec,
        scrubbing_indexed: bool = False,
        selection_filter_classes: set[str] | None = None,
    ) -> PhysicalPlan:
        """Build the physical plan for ``spec``.

        Parameters
        ----------
        spec:
            Analyzed query specification.
        scrubbing_indexed:
            Execute scrubbing queries in the pre-indexed mode (specialized NN
            training and inference assumed already paid for).
        selection_filter_classes:
            Restrict selection plans to a subset of filter classes; used by
            the factor-analysis / lesion-study benchmarks.
        """
        self._validate_udfs(spec)
        if isinstance(spec, AggregateQuerySpec):
            return AggregateQueryPlan(spec)
        if isinstance(spec, ScrubbingQuerySpec):
            return ScrubbingQueryPlan(spec, indexed=scrubbing_indexed)
        if isinstance(spec, SelectionQuerySpec):
            return SelectionQueryPlan(
                spec, enabled_filter_classes=selection_filter_classes
            )
        if isinstance(spec, ExactQuerySpec):
            return ExactQueryPlan(spec)
        raise PlanningError(f"no plan rule for query spec of type {type(spec).__name__}")

    def _validate_udfs(self, spec: QuerySpec) -> None:
        predicates = getattr(spec, "udf_predicates", [])
        for predicate in predicates:
            if predicate.udf_name not in self.udf_registry:
                raise UnknownUDFError(
                    f"query uses unregistered UDF {predicate.udf_name!r}"
                )
