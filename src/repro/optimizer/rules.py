"""Rule-based plan selection (Section 5).

The optimizer maps each analyzed query class to its physical plan.  Because
every specialized NN and filter runs orders of magnitude faster than object
detection (a 100,000 fps filter "would need to filter 0.003% of the frames to
be effective"), rules rather than a cost model are sufficient: the plan
structure follows from the query class and the statistical decisions are made
inside the plans from held-out data.
"""

from __future__ import annotations

import warnings

from repro.api.hints import QueryHints, coerce_hints, require_hints
from repro.errors import PlanningError, UnknownUDFError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
)
from repro.optimizer.aggregates import AggregateQueryPlan
from repro.optimizer.base import PhysicalPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.udf.registry import UDFRegistry


class RuleBasedOptimizer:
    """Chooses a physical plan for an analyzed FrameQL query."""

    def __init__(self, udf_registry: UDFRegistry) -> None:
        self.udf_registry = udf_registry

    def plan(
        self,
        spec: QuerySpec,
        hints: QueryHints | None = None,
        scrubbing_indexed: bool | None = None,
        selection_filter_classes: set[str] | None = None,
    ) -> PhysicalPlan:
        """Build the physical plan for ``spec``.

        Parameters
        ----------
        spec:
            Analyzed query specification.
        hints:
            Typed execution hints (see :class:`~repro.api.hints.QueryHints`).
        scrubbing_indexed, selection_filter_classes:
            Deprecated loose forms of the corresponding hint fields; use
            ``hints`` instead.
        """
        require_hints(hints)
        if scrubbing_indexed is not None or selection_filter_classes is not None:
            warnings.warn(
                "the scrubbing_indexed / selection_filter_classes keyword "
                "arguments are deprecated; pass hints=QueryHints(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            hints = coerce_hints(hints, scrubbing_indexed, selection_filter_classes)
        hints = hints or QueryHints()
        self._validate_udfs(spec)
        if isinstance(spec, AggregateQuerySpec):
            return AggregateQueryPlan(spec, hints=hints)
        if isinstance(spec, ScrubbingQuerySpec):
            return ScrubbingQueryPlan(spec, hints=hints)
        if isinstance(spec, SelectionQuerySpec):
            return SelectionQueryPlan(spec, hints=hints)
        if isinstance(spec, ExactQuerySpec):
            return ExactQueryPlan(spec, hints=hints)
        raise PlanningError(f"no plan rule for query spec of type {type(spec).__name__}")

    def _validate_udfs(self, spec: QuerySpec) -> None:
        predicates = getattr(spec, "udf_predicates", [])
        for predicate in predicates:
            if predicate.udf_name not in self.udf_registry:
                raise UnknownUDFError(
                    f"query uses unregistered UDF {predicate.udf_name!r}"
                )
