"""Cost-based query optimizer: logical plans, operators, physical plans.

The planning stack has three layers (Section 5):

* **logical plans** (:mod:`repro.optimizer.logical`) restate an analyzed
  query's semantics as a small relational-style tree;
* **physical operators** (:mod:`repro.optimizer.operators`) are the
  composable, stream-compatible stages — scans, samplers, rankers, filter
  cascades, verifiers, track aggregation — that the four plan classes are
  built from;
* the **cost-based optimizer** (:mod:`repro.optimizer.cost`) enumerates
  alternative operator trees per logical plan, prices them from the
  statistics catalog (:mod:`repro.catalog`) in estimated detector calls plus
  specialization training cost, and picks the cheapest —
  :class:`RuleBasedOptimizer` remains as the thin compatibility wrapper.

Every plan executes through the pull-based streaming protocol of
:mod:`repro.core.events`: ``plan.run(context)`` yields typed
:class:`~repro.core.events.ExecutionEvent` objects, ``plan.open(context)``
returns a :class:`PlanCursor` with explicit ``next_batch()``/``close()``, and
``plan.execute(context)`` drains the stream into a blocking result.  The
event types are re-exported here so the optimizer package is a complete,
typed surface for plan authors.
"""

from repro.core.events import (
    Completed,
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    Progress,
    ScrubbingHit,
    SelectionWindow,
    StopConditions,
)
from repro.optimizer.base import CostEstimate, PhysicalPlan, PlanCursor
from repro.optimizer.aggregates import AggregateQueryPlan
from repro.optimizer.cost import CostBasedOptimizer, PlanCandidate
from repro.optimizer.logical import LogicalNode, LogicalPlan, build_logical_plan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.rules import RuleBasedOptimizer

__all__ = [
    "PhysicalPlan",
    "PlanCursor",
    "CostEstimate",
    "AggregateQueryPlan",
    "ScrubbingQueryPlan",
    "SelectionQueryPlan",
    "ExactQueryPlan",
    "CostBasedOptimizer",
    "PlanCandidate",
    "RuleBasedOptimizer",
    "LogicalPlan",
    "LogicalNode",
    "build_logical_plan",
    "ExecutionEvent",
    "ExecutionControl",
    "Progress",
    "EstimateUpdate",
    "ScrubbingHit",
    "SelectionWindow",
    "Completed",
    "StopConditions",
]
