"""Rule-based query optimizer and streaming physical plans.

The optimizer inspects the analyzed query spec and chooses a physical plan
(Section 5).  Because the filters and specialized NNs are orders of magnitude
cheaper than object detection, a rule-based optimizer is sufficient: the plan
structure is determined by the query class, and the statistical decisions
(rewrite vs control variates, filter thresholds) are made inside the plans
from held-out data, following Algorithm 1.

Every plan executes through the pull-based streaming protocol of
:mod:`repro.core.events`: ``plan.run(context)`` yields typed
:class:`~repro.core.events.ExecutionEvent` objects, ``plan.open(context)``
returns a :class:`PlanCursor` with explicit ``next_batch()``/``close()``, and
``plan.execute(context)`` drains the stream into a blocking result.  The
event types are re-exported here so the optimizer package is a complete,
typed surface for plan authors.
"""

from repro.core.events import (
    Completed,
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    Progress,
    ScrubbingHit,
    SelectionWindow,
    StopConditions,
)
from repro.optimizer.base import PhysicalPlan, PlanCursor
from repro.optimizer.aggregates import AggregateQueryPlan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.rules import RuleBasedOptimizer

__all__ = [
    "PhysicalPlan",
    "PlanCursor",
    "AggregateQueryPlan",
    "ScrubbingQueryPlan",
    "SelectionQueryPlan",
    "ExactQueryPlan",
    "RuleBasedOptimizer",
    "ExecutionEvent",
    "ExecutionControl",
    "Progress",
    "EstimateUpdate",
    "ScrubbingHit",
    "SelectionWindow",
    "Completed",
    "StopConditions",
]
