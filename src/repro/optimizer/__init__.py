"""Rule-based query optimizer and physical plans.

The optimizer inspects the analyzed query spec and chooses a physical plan
(Section 5).  Because the filters and specialized NNs are orders of magnitude
cheaper than object detection, a rule-based optimizer is sufficient: the plan
structure is determined by the query class, and the statistical decisions
(rewrite vs control variates, filter thresholds) are made inside the plans
from held-out data, following Algorithm 1.
"""

from repro.optimizer.base import PhysicalPlan
from repro.optimizer.aggregates import AggregateQueryPlan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.rules import RuleBasedOptimizer

__all__ = [
    "PhysicalPlan",
    "AggregateQueryPlan",
    "ScrubbingQueryPlan",
    "SelectionQueryPlan",
    "ExactQueryPlan",
    "RuleBasedOptimizer",
]
