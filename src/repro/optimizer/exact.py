"""Fallback physical plan: exhaustive detection with record materialisation.

Used for queries the optimizer cannot accelerate (``SELECT *`` with no
predicates, unrecognised query shapes).  It composes the
:class:`~repro.optimizer.operators.FullScan` and
:class:`~repro.optimizer.operators.TrackAggregator` operators: the detector
runs over every frame, track identities are resolved and every FrameQL record
is materialised, which is exactly the "populate the rows" strategy the paper's
optimizations exist to avoid — but it is always available and always correct.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.api.hints import QueryHints, require_hints
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    ExecutionControl,
    ExecutionEvent,
    Progress,
)
from repro.core.results import ExactResult, OperatorNode
from repro.frameql.analyzer import ExactQuerySpec
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.base import PhysicalPlan
from repro.optimizer.operators import FullScan, TrackAggregator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics


class ExactQueryPlan(PhysicalPlan):
    """Run object detection over every frame and materialise all records."""

    def __init__(self, spec: ExactQuerySpec, hints: QueryHints | None = None) -> None:
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()
        self._scan = FullScan()
        self._tracks = TrackAggregator(iou_threshold=0.7, max_gap=1)

    def describe(self) -> str:
        return f"ExactQueryPlan(reason={self.spec.reason!r})"

    def operator_tree(
        self,
        num_frames: int | None = None,
        stats: VideoStatistics | None = None,
    ) -> OperatorNode:
        calls: int | None = None
        seconds: float | None = None
        if num_frames is not None and stats is not None:
            calls = num_frames
            seconds = stats.detector_seconds(num_frames)
        return OperatorNode(
            "ExactQueryPlan",
            detail=self.spec.reason,
            children=(
                OperatorNode(
                    "FullScan",
                    detail="detection on every frame",
                    estimated_detector_calls=calls,
                    estimated_seconds=seconds,
                ),
                OperatorNode(
                    "TrackAggregator",
                    detail="IoU tracker, all records materialised",
                ),
            ),
        )

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        ledger = ExecutionLedger()
        num_frames = context.video.num_frames
        yield Progress(phase="detection_scan", total_frames=num_frames)
        with self._scan.traced(context, ledger):
            results = yield from self._scan.stream_detections(
                context, control, ledger
            )
        with self._tracks.traced(context, ledger):
            records = self._tracks.materialize(self._tracks.resolve(results))
        yield Completed(
            ExactResult(
                kind="exact",
                method="exhaustive",
                ledger=ledger,
                detection_calls=len(results),
                plan_description=(
                    "object detection on every frame, all records materialised"
                ),
                records=records,
            ),
            stop_reason=control.stop_reason,
        )
