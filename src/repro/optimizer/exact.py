"""Fallback physical plan: exhaustive detection with record materialisation.

Used for queries the rule-based optimizer cannot accelerate (``SELECT *`` with
no predicates, unrecognised query shapes).  It runs the detector over every
frame, resolves track identities and materialises every FrameQL record, which
is exactly the "populate the rows" strategy the paper's optimizations exist to
avoid — but it is always available and always correct.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    ExecutionControl,
    ExecutionEvent,
    Progress,
)
from repro.core.results import ExactResult, OperatorNode
from repro.frameql.analyzer import ExactQuerySpec
from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import ExecutionLedger
from repro.optimizer.base import PhysicalPlan
from repro.tracking.iou_tracker import IoUTracker


class ExactQueryPlan(PhysicalPlan):
    """Run object detection over every frame and materialise all records."""

    def __init__(self, spec: ExactQuerySpec, hints: QueryHints | None = None) -> None:
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()

    def describe(self) -> str:
        return f"ExactQueryPlan(reason={self.spec.reason!r})"

    def operator_tree(self) -> OperatorNode:
        return OperatorNode(
            "ExactQueryPlan",
            detail=self.spec.reason,
            children=(
                OperatorNode("ExhaustiveDetectionScan"),
                OperatorNode("TrackResolution", detail="IoU tracker"),
                OperatorNode("RecordMaterialisation"),
            ),
        )

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        ledger = ExecutionLedger()
        num_frames = context.video.num_frames
        yield Progress(phase="detection_scan", total_frames=num_frames)
        results = []
        while len(results) < num_frames and not control.should_stop(ledger):
            stop_at = min(num_frames, len(results) + control.batch_allowance(ledger))
            results.extend(
                context.detect_batch(np.arange(len(results), stop_at), ledger)
            )
            yield Progress(
                phase="detection_scan",
                frames_scanned=ledger.frames_decoded,
                detector_calls=ledger.detector_calls,
                total_frames=num_frames,
            )
        tracker = IoUTracker(iou_threshold=0.7, max_gap=1)
        tracks = tracker.resolve(results)
        records: list[FrameRecord] = []
        for track in tracks:
            for det in track.detections:
                records.append(
                    FrameRecord(
                        timestamp=det.timestamp,
                        frame_index=det.frame_index,
                        object_class=det.object_class,
                        mask=det.box,
                        trackid=track.track_id,
                        features=det.features,
                        confidence=det.confidence,
                        color=det.color,
                        color_name=det.color_name,
                    )
                )
        yield Completed(
            ExactResult(
                kind="exact",
                method="exhaustive",
                ledger=ledger,
                detection_calls=len(results),
                plan_description=(
                    "object detection on every frame, all records materialised"
                ),
                records=records,
            ),
            stop_reason=control.stop_reason,
        )
