"""Physical plan for content-based selection queries (Section 8).

The plan infers filters from the query and the labeled set, applies them to
discard irrelevant frames, runs the object detector on the survivors (at a
cost reduced by any spatial crop), evaluates the object-level predicates
(class, UDFs, area, spatial position), resolves track identities, applies the
per-track duration constraint and returns the matching FrameQL records.

Because every candidate frame is verified by the detector, the plan can only
produce false negatives (a frame wrongly discarded by a filter), never false
positives — matching the paper's error accounting for these queries.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    ExecutionControl,
    ExecutionEvent,
    Progress,
    SelectionWindow,
)
from repro.core.results import OperatorNode, SelectionResult
from repro.detection.base import Detection, DetectionResult
from repro.errors import PlanningError
from repro.frameql.analyzer import SelectionQuerySpec
from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import ExecutionLedger, RuntimeLedger
from repro.optimizer.base import PhysicalPlan
from repro.selection.filters import TemporalFilter
from repro.selection.inference import FilterInferenceInputs, infer_selection_plan
from repro.selection.plan import SelectionPlan
from repro.tracking.iou_tracker import IoUTracker
from repro.udf.registry import UDFRegistry

_OP_FUNCS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def detection_matches(
    detection: Detection, spec: SelectionQuerySpec, udf_registry: UDFRegistry
) -> bool:
    """Whether one detection satisfies the query's object-level predicates."""
    if spec.object_class is not None and detection.object_class != spec.object_class:
        return False
    box = detection.box
    if spec.min_area is not None and box.area <= spec.min_area:
        return False
    if spec.max_area is not None and box.area >= spec.max_area:
        return False
    for constraint in spec.spatial_constraints:
        extent = {
            "xmin": box.x_min,
            "xmax": box.x_max,
            "ymin": box.y_min,
            "ymax": box.y_max,
        }[constraint.axis]
        if not _OP_FUNCS[constraint.op](extent, constraint.value):
            return False
    for predicate in spec.udf_predicates:
        udf = udf_registry.get(predicate.udf_name)
        value = udf.object_fn(detection)
        if not _OP_FUNCS[predicate.op](value, predicate.value):
            return False
    return True


class SelectionQueryPlan(PhysicalPlan):
    """Filter pipeline followed by detection and predicate evaluation."""

    _UNSET = object()

    def __init__(
        self,
        spec: SelectionQuerySpec,
        enabled_filter_classes: set[str] | None = _UNSET,  # type: ignore[assignment]
        hints: QueryHints | None = None,
    ) -> None:
        if spec.object_class is None and not spec.udf_predicates:
            raise PlanningError(
                "selection queries need a class predicate or at least one UDF predicate"
            )
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()
        # The explicit ``enabled_filter_classes`` argument (historical API,
        # where ``None`` means "all") wins over hints.
        if enabled_filter_classes is self._UNSET:
            self.enabled_filter_classes = self.hints.enabled_filter_classes
        else:
            self.enabled_filter_classes = enabled_filter_classes

    def describe(self) -> str:
        enabled = (
            sorted(self.enabled_filter_classes)
            if self.enabled_filter_classes is not None
            else "all"
        )
        return (
            f"SelectionQueryPlan(class={self.spec.object_class}, "
            f"udfs={[p.udf_name for p in self.spec.udf_predicates]}, "
            f"filters={enabled})"
        )

    def operator_tree(self) -> OperatorNode:
        spec = self.spec
        enabled = (
            ", ".join(sorted(self.enabled_filter_classes))
            if self.enabled_filter_classes is not None
            else "all"
        )
        return OperatorNode(
            "SelectionQueryPlan",
            detail=f"class={spec.object_class}",
            children=(
                OperatorNode("InferredFilterPipeline", detail=f"classes={enabled}"),
                OperatorNode("DetectorVerification", detail="surviving frames only"),
                OperatorNode(
                    "PredicateEvaluation",
                    detail=f"udfs={[p.udf_name for p in spec.udf_predicates]}",
                ),
                OperatorNode("TrackResolution", detail="IoU tracker"),
            ),
        )

    def estimate_detector_calls(self, num_frames: int) -> int:
        if self.enabled_filter_classes is not None and not self.enabled_filter_classes:
            return num_frames
        # Inferred filters typically discard the large majority of frames; a
        # 10% survival rate is the explanatory stand-in for the data-dependent
        # pass rates chosen from the held-out day at execution time.
        return max(1, num_frames // 10)

    # -- execution --------------------------------------------------------------------

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        ledger = ExecutionLedger()
        yield Progress(
            phase="filter_inference", total_frames=context.video.num_frames
        )
        plan = self._build_filter_plan(context, ledger)

        all_frames = np.arange(context.video.num_frames, dtype=np.int64)
        surviving = plan.apply(context.video, all_frames, ledger)
        yield Progress(
            phase="filter_pipeline",
            frames_scanned=ledger.frames_decoded,
            detector_calls=ledger.detector_calls,
            total_frames=int(surviving.size),
        )

        cost_scale = plan.detection_cost_scale
        window_limit = control.stop.limit
        # Early stopping on provisional windows is unsound for duration
        # queries: a track straddling the scanned prefix has not yet met
        # min_track_frames, so fragments of one real event could be counted
        # as several windows.  Those queries scan fully and only truncate
        # the finished window list.
        provisional_limit = (
            window_limit if self.spec.min_track_frames is None else None
        )
        frame_results: list[DetectionResult] = []
        records: list[FrameRecord] = []
        matched_frames: set[int] = set()
        candidates_pending = False
        taken = 0
        while taken < surviving.size:
            if control.should_stop(ledger):
                break
            stop_at = min(int(surviving.size), taken + control.batch_allowance(ledger))
            batch_results = context.detect_batch(
                surviving[taken:stop_at], ledger, cost_scale=cost_scale
            )
            frame_results.extend(batch_results)
            taken = stop_at
            yield Progress(
                phase="detector_verification",
                frames_scanned=ledger.frames_decoded,
                detector_calls=ledger.detector_calls,
                total_frames=int(surviving.size),
            )
            if provisional_limit is not None:
                # Provisional evaluation over the detections so far: stop as
                # soon as enough matched windows exist.  (Without a limit the
                # predicates are evaluated exactly once, after the full scan.)
                # Track resolution over the full prefix is quadratic in the
                # worst case, so it only reruns when a batch actually adds a
                # detection that passes the object-level predicates — batches
                # of non-candidates cannot change the window count.
                candidates_pending = candidates_pending or any(
                    detection_matches(det, self.spec, context.udf_registry)
                    for result in batch_results
                    for det in result.detections
                )
                if not candidates_pending:
                    continue
                records, matched_frames = self._evaluate_predicates(
                    context, frame_results, plan
                )
                candidates_pending = False
                if len(self._windows(matched_frames, plan)) >= provisional_limit:
                    control.note_stop("limit")
                    break
        if provisional_limit is None or (
            taken >= surviving.size and control.stop_reason is None
        ):
            records, matched_frames = self._evaluate_predicates(
                context, frame_results, plan
            )

        windows = self._windows(matched_frames, plan)
        if window_limit is not None and len(windows) > window_limit:
            windows = windows[:window_limit]
            kept = {
                frame
                for start, end in windows
                for frame in range(start, end + 1)
            }
            matched_frames = {f for f in matched_frames if f in kept}
            records = [r for r in records if r.frame_index in kept]
        for position, (start, end) in enumerate(windows, start=1):
            yield SelectionWindow(
                start_frame=start,
                end_frame=end,
                matched_frames=sum(1 for f in matched_frames if start <= f <= end),
                windows_so_far=position,
            )
        yield Completed(
            SelectionResult(
                kind="selection",
                method="filtered" if plan.filters else "exhaustive",
                ledger=ledger,
                detection_calls=len(frame_results),
                plan_description=plan.describe(),
                records=records,
                matched_frames=sorted(matched_frames),
                frames_scanned=int(all_frames.size),
                frames_after_filters=int(surviving.size),
            ),
            stop_reason=control.stop_reason,
        )

    def _windows(
        self, matched_frames: set[int], plan: SelectionPlan
    ) -> list[tuple[int, int]]:
        """Contiguous windows of matched frames (subsample-step tolerant)."""
        step = max(1, self._subsample_step(plan))
        windows: list[tuple[int, int]] = []
        for frame in sorted(matched_frames):
            if windows and frame - windows[-1][1] <= step:
                windows[-1] = (windows[-1][0], frame)
            else:
                windows.append((frame, frame))
        return windows

    # -- filter inference ----------------------------------------------------------------

    def _build_filter_plan(
        self, context: ExecutionContext, ledger: RuntimeLedger
    ) -> SelectionPlan:
        if self.enabled_filter_classes is not None and not self.enabled_filter_classes:
            return SelectionPlan()
        labeled = context.labeled_set
        if labeled is None:
            # No labeled set: only query-derived (temporal/spatial) filters can
            # be inferred, and only when explicitly enabled.
            return SelectionPlan()
        inputs = self._inference_inputs(context)
        training_ledger = ledger if context.config.include_training_time else None
        return infer_selection_plan(
            spec=self.spec,
            unseen_video=context.video,
            inputs=inputs,
            ledger=training_ledger,
            training_config=context.config.training,
            enabled_filter_classes=self.enabled_filter_classes,
            model_type=context.config.specialized_model_type,
        )

    def _inference_inputs(self, context: ExecutionContext) -> FilterInferenceInputs:
        labeled = context.require_labeled_set()
        object_class = self.spec.object_class
        if object_class is not None:
            train_presence = labeled.train_presence(object_class)
            heldout_presence = labeled.heldout_presence(object_class)
        else:
            train_presence = np.ones(labeled.train_video.num_frames, dtype=bool)
            heldout_presence = np.ones(labeled.heldout_video.num_frames, dtype=bool)
        heldout_positive_mask = self._heldout_positive_mask(context)
        return FilterInferenceInputs(
            train_video=labeled.train_video,
            heldout_video=labeled.heldout_video,
            train_features=labeled.train_features,
            heldout_features=labeled.heldout_features,
            train_presence=train_presence,
            heldout_presence=heldout_presence,
            heldout_positive_mask=heldout_positive_mask,
        )

    def _heldout_positive_mask(self, context: ExecutionContext) -> np.ndarray:
        """Held-out frames whose recorded detections satisfy the full predicate."""
        labeled = context.require_labeled_set()
        recorded = labeled.heldout_recorded
        mask = np.zeros(recorded.num_frames, dtype=bool)
        for frame_index in range(recorded.num_frames):
            result = recorded.result(frame_index)
            mask[frame_index] = any(
                detection_matches(det, self.spec, context.udf_registry)
                for det in result.detections
            )
        return mask

    # -- predicate evaluation -----------------------------------------------------------------

    def _subsample_step(self, plan: SelectionPlan) -> int:
        for filter_ in plan.filters:
            if isinstance(filter_, TemporalFilter):
                return filter_.subsample_step
        return 1

    def _evaluate_predicates(
        self,
        context: ExecutionContext,
        frame_results: list[DetectionResult],
        plan: SelectionPlan,
    ) -> tuple[list[FrameRecord], set[int]]:
        spec = self.spec
        step = self._subsample_step(plan)

        # Resolve track identities over the processed frames.  A looser IoU
        # threshold is used when frames were subsampled, since objects move
        # further between processed frames.
        iou_threshold = 0.7 if step == 1 else 0.3
        tracker = IoUTracker(iou_threshold=iou_threshold, max_gap=max(1, step))
        tracks = tracker.resolve(frame_results)

        min_detections = 1
        if spec.min_track_frames is not None:
            min_detections = max(1, math.ceil(spec.min_track_frames / step))

        records: list[FrameRecord] = []
        matched_frames: set[int] = set()
        for track in tracks:
            matching = [
                det
                for det in track.detections
                if detection_matches(det, spec, context.udf_registry)
            ]
            if len(matching) < min_detections:
                continue
            for det in matching:
                records.append(
                    FrameRecord(
                        timestamp=det.timestamp,
                        frame_index=det.frame_index,
                        object_class=det.object_class,
                        mask=det.box,
                        trackid=track.track_id,
                        features=det.features,
                        confidence=det.confidence,
                        color=det.color,
                        color_name=det.color_name,
                    )
                )
                matched_frames.add(det.frame_index)
        return records, matched_frames
