"""Physical plan for content-based selection queries (Section 8).

The plan composes :class:`~repro.optimizer.operators.FilterCascade` (filters
inferred from the query and the labeled set, applied to discard irrelevant
frames) with detector verification over the survivors (at a cost reduced by
any spatial crop), object-level predicate evaluation (class, UDFs, area,
spatial position), :class:`~repro.optimizer.operators.TrackAggregator`
identity resolution, the per-track duration constraint and FrameQL record
materialisation.

Because every candidate frame is verified by the detector, the plan can only
produce false negatives (a frame wrongly discarded by a filter), never false
positives — matching the paper's error accounting for these queries.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.api.hints import QueryHints, require_hints
from repro.core.context import ExecutionContext
from repro.core.events import (
    Completed,
    ExecutionControl,
    ExecutionEvent,
    Progress,
    SelectionWindow,
)
from repro.core.results import OperatorNode, SelectionResult
from repro.detection.base import DetectionResult
from repro.errors import PlanningError
from repro.frameql.analyzer import SelectionQuerySpec
from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import ExecutionLedger
from repro.obs.trace import operator_scope
from repro.optimizer.base import CostEstimate, PhysicalPlan
from repro.optimizer.operators import (
    FilterCascade,
    TrackAggregator,
    detection_matches,
)
from repro.selection.filters import TemporalFilter
from repro.selection.plan import SelectionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics

__all__ = ["SelectionQueryPlan", "detection_matches"]


class SelectionQueryPlan(PhysicalPlan):
    """Filter pipeline followed by detection and predicate evaluation."""

    _UNSET = object()

    def __init__(
        self,
        spec: SelectionQuerySpec,
        enabled_filter_classes: set[str] | None = _UNSET,  # type: ignore[assignment]
        hints: QueryHints | None = None,
    ) -> None:
        if spec.object_class is None and not spec.udf_predicates:
            raise PlanningError(
                "selection queries need a class predicate or at least one UDF predicate"
            )
        self.spec = spec
        self.hints = require_hints(hints) or QueryHints()
        # The explicit ``enabled_filter_classes`` argument (historical API,
        # where ``None`` means "all") wins over hints.
        if enabled_filter_classes is self._UNSET:
            self.enabled_filter_classes = self.hints.enabled_filter_classes
        else:
            self.enabled_filter_classes = enabled_filter_classes
        self._cascade = FilterCascade(spec, self.enabled_filter_classes)

    def describe(self) -> str:
        enabled = (
            sorted(self.enabled_filter_classes)
            if self.enabled_filter_classes is not None
            else "all"
        )
        return (
            f"SelectionQueryPlan(class={self.spec.object_class}, "
            f"udfs={[p.udf_name for p in self.spec.udf_predicates]}, "
            f"filters={enabled})"
        )

    def _filters_disabled(self) -> bool:
        return (
            self.enabled_filter_classes is not None
            and not self.enabled_filter_classes
        )

    def operator_tree(
        self,
        num_frames: int | None = None,
        stats: VideoStatistics | None = None,
    ) -> OperatorNode:
        spec = self.spec
        enabled = (
            ", ".join(sorted(self.enabled_filter_classes))
            if self.enabled_filter_classes is not None
            else "all"
        )
        calls: int | None = None
        verify_seconds: float | None = None
        cascade_calls: int | None = None
        cascade_seconds: float | None = None
        if num_frames is not None and stats is not None:
            calls = self.estimate_detector_calls(num_frames, stats)
            verify_seconds = stats.detector_seconds(calls)
            cascade_calls = 0
            cascade_seconds = stats.filter_seconds(
                num_frames
            ) + stats.specialized_inference_seconds(num_frames)
        children: tuple[OperatorNode, ...] = ()
        if not self._filters_disabled():
            children += (
                OperatorNode(
                    "FilterCascade",
                    detail=f"classes={enabled}",
                    estimated_detector_calls=cascade_calls,
                    estimated_seconds=cascade_seconds,
                ),
            )
        children += (
            OperatorNode(
                "DetectorVerifier",
                detail="surviving frames only",
                estimated_detector_calls=calls,
                estimated_seconds=verify_seconds,
            ),
            OperatorNode(
                "PredicateEvaluation",
                detail=f"udfs={[p.udf_name for p in spec.udf_predicates]}",
            ),
            OperatorNode("TrackAggregator", detail="IoU tracker"),
        )
        return OperatorNode(
            "SelectionQueryPlan",
            detail=f"class={spec.object_class}",
            children=children,
        )

    def _pruning_enabled(self) -> bool:
        """Whether any frame-discarding filter class may be inferred.

        Only content and label filters prune frames (spatial scales cost,
        temporal only prunes under a track-duration constraint); a
        filter-class restriction that excludes both leaves every frame to be
        verified.
        """
        enabled = self.enabled_filter_classes
        if enabled is None:
            return True
        return bool({"label", "content"} & enabled)

    def estimate_detector_calls(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> int:
        # Survivors are verified exactly once, so the population is the only
        # *bound* that always holds: the inferred filters' no-false-negative
        # thresholds are calibrated at execution time, and their pass rate on
        # a rare or hard-to-model class can be almost anything.  The
        # survival-based reduction is an expectation used for candidate
        # pricing (:meth:`estimate_cost`), not a bound.
        return num_frames

    def estimate_cost(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> CostEstimate:
        base = super().estimate_cost(num_frames, stats)
        if stats is None or self._filters_disabled():
            return base
        if self._pruning_enabled():
            survival = stats.selection_survival(self.spec.object_class)
            expected_calls = min(num_frames, math.ceil(num_frames * survival))
        else:
            expected_calls = num_frames
        # The cascade runs cheap filters over every frame; a label filter
        # additionally trains a presence model and scores every frame.
        enabled = self.enabled_filter_classes
        trainable = (
            (enabled is None or "label" in enabled)
            and stats.class_stats(self.spec.object_class) is not None
        )
        return CostEstimate(
            detector_calls=expected_calls,
            detector_seconds=stats.detector_seconds(expected_calls),
            training_seconds=stats.specialized_training_seconds() if trainable else 0.0,
            inference_seconds=(
                stats.specialized_inference_seconds(num_frames) if trainable else 0.0
            ),
            filter_seconds=stats.filter_seconds(num_frames),
        )

    # -- execution --------------------------------------------------------------------

    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        ledger = ExecutionLedger()
        yield Progress(
            phase="filter_inference", total_frames=context.video.num_frames
        )
        with self._cascade.traced(context, ledger):
            plan = self._cascade.build(context, ledger)
            all_frames = np.arange(context.video.num_frames, dtype=np.int64)
            surviving = plan.apply(context.video, all_frames, ledger)
        # Shard-aware entry: the filter survivors are the exact detector
        # workload, verified in ascending frame order across the shards.
        context.announce_access_plan(surviving, monotone=True)
        yield Progress(
            phase="filter_pipeline",
            frames_scanned=ledger.frames_decoded,
            detector_calls=ledger.detector_calls,
            total_frames=int(surviving.size),
        )

        cost_scale = plan.detection_cost_scale
        window_limit = control.stop.limit
        # Early stopping on provisional windows is unsound for duration
        # queries: a track straddling the scanned prefix has not yet met
        # min_track_frames, so fragments of one real event could be counted
        # as several windows.  Those queries scan fully and only truncate
        # the finished window list.
        provisional_limit = (
            window_limit if self.spec.min_track_frames is None else None
        )
        frame_results: list[DetectionResult] = []
        records: list[FrameRecord] = []
        matched_frames: set[int] = set()
        candidates_pending = False
        taken = 0
        with operator_scope(context, "DetectorVerifier", ledger):
            while taken < surviving.size:
                if control.should_stop(ledger):
                    break
                stop_at = min(
                    int(surviving.size), taken + control.batch_allowance(ledger)
                )
                batch_results = context.detect_batch(
                    surviving[taken:stop_at], ledger, cost_scale=cost_scale
                )
                frame_results.extend(batch_results)
                taken = stop_at
                yield Progress(
                    phase="detector_verification",
                    frames_scanned=ledger.frames_decoded,
                    detector_calls=ledger.detector_calls,
                    total_frames=int(surviving.size),
                )
                if provisional_limit is not None:
                    # Provisional evaluation over the detections so far: stop
                    # as soon as enough matched windows exist.  (Without a
                    # limit the predicates are evaluated exactly once, after
                    # the full scan.)  Track resolution over the full prefix
                    # is quadratic in the worst case, so it only reruns when a
                    # batch actually adds a detection that passes the
                    # object-level predicates — batches of non-candidates
                    # cannot change the window count.
                    candidates_pending = candidates_pending or any(
                        detection_matches(det, self.spec, context.udf_registry)
                        for result in batch_results
                        for det in result.detections
                    )
                    if not candidates_pending:
                        continue
                    records, matched_frames = self._evaluate_predicates(
                        context, frame_results, plan
                    )
                    candidates_pending = False
                    if len(self._windows(matched_frames, plan)) >= provisional_limit:
                        control.note_stop("limit")
                        break
        if provisional_limit is None or (
            taken >= surviving.size and control.stop_reason is None
        ):
            records, matched_frames = self._evaluate_predicates(
                context, frame_results, plan
            )

        windows = self._windows(matched_frames, plan)
        if window_limit is not None and len(windows) > window_limit:
            windows = windows[:window_limit]
            kept = {
                frame
                for start, end in windows
                for frame in range(start, end + 1)
            }
            matched_frames = {f for f in matched_frames if f in kept}
            records = [r for r in records if r.frame_index in kept]
        for position, (start, end) in enumerate(windows, start=1):
            yield SelectionWindow(
                start_frame=start,
                end_frame=end,
                matched_frames=sum(1 for f in matched_frames if start <= f <= end),
                windows_so_far=position,
            )
        yield Completed(
            SelectionResult(
                kind="selection",
                method="filtered" if plan.filters else "exhaustive",
                ledger=ledger,
                detection_calls=len(frame_results),
                plan_description=plan.describe(),
                records=records,
                matched_frames=sorted(matched_frames),
                frames_scanned=int(all_frames.size),
                frames_after_filters=int(surviving.size),
            ),
            stop_reason=control.stop_reason,
        )

    def _windows(
        self, matched_frames: set[int], plan: SelectionPlan
    ) -> list[tuple[int, int]]:
        """Contiguous windows of matched frames (subsample-step tolerant)."""
        step = max(1, self._subsample_step(plan))
        windows: list[tuple[int, int]] = []
        for frame in sorted(matched_frames):
            if windows and frame - windows[-1][1] <= step:
                windows[-1] = (windows[-1][0], frame)
            else:
                windows.append((frame, frame))
        return windows

    # -- predicate evaluation -----------------------------------------------------------------

    def _subsample_step(self, plan: SelectionPlan) -> int:
        for filter_ in plan.filters:
            if isinstance(filter_, TemporalFilter):
                return filter_.subsample_step
        return 1

    def _evaluate_predicates(
        self,
        context: ExecutionContext,
        frame_results: list[DetectionResult],
        plan: SelectionPlan,
    ) -> tuple[list[FrameRecord], set[int]]:
        spec = self.spec
        step = self._subsample_step(plan)

        # Resolve track identities over the processed frames.  A looser IoU
        # threshold is used when frames were subsampled, since objects move
        # further between processed frames.
        iou_threshold = 0.7 if step == 1 else 0.3
        aggregator = TrackAggregator(
            iou_threshold=iou_threshold, max_gap=max(1, step)
        )
        with aggregator.traced(context):
            tracks = aggregator.resolve(frame_results)

        min_detections = 1
        if spec.min_track_frames is not None:
            min_detections = max(1, math.ceil(spec.min_track_frames / step))

        records: list[FrameRecord] = []
        matched_frames: set[int] = set()
        with operator_scope(context, "PredicateEvaluation"):
            for track in tracks:
                matching = [
                    det
                    for det in track.detections
                    if detection_matches(det, spec, context.udf_registry)
                ]
                if len(matching) < min_detections:
                    continue
                for det in matching:
                    records.append(
                        FrameRecord(
                            timestamp=det.timestamp,
                            frame_index=det.frame_index,
                            object_class=det.object_class,
                            mask=det.box,
                            trackid=track.track_id,
                            features=det.features,
                            confidence=det.confidence,
                            color=det.color,
                            color_name=det.color_name,
                        )
                    )
                    matched_frames.add(det.frame_index)
        return records, matched_frames
