"""Count-specialized model: predicts the per-frame count of one object class.

The paper extends specialization from binary detection to counting
(Section 6.2): the specialized NN performs multi-class classification where
class ``k`` means "``k`` objects of the target class are visible".  The number
of classes is "the highest count that is at least 1% of the video plus one".
The model's argmax prediction is used for query rewriting, its probability-
weighted expected count is a useful control-variate signal, and its
``P(count >= N)`` scores drive the scrubbing optimization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InsufficientTrainingDataError
from repro.metrics.runtime import RuntimeLedger, StandardCosts
from repro.specialization.features import FeatureScaler
from repro.specialization.models import SoftmaxRegression, TinyMLP
from repro.specialization.trainer import TrainingConfig, train_classifier


def select_num_classes(counts: np.ndarray, min_fraction: float = 0.01) -> int:
    """Number of count classes implied by the paper's 1% rule.

    The highest count value that occurs in at least ``min_fraction`` of the
    frames, plus one (so counts of 0..k map to classes 0..k).  Rarer, higher
    counts are clipped into the top class.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        raise InsufficientTrainingDataError("cannot size a count model from zero frames")
    histogram = np.bincount(counts)
    fractions = histogram / counts.size
    qualifying = np.nonzero(fractions >= min_fraction)[0]
    highest = int(qualifying.max()) if qualifying.size else 0
    # A classifier needs at least two classes (0 and 1).
    return max(highest + 1, 2)


class CountSpecializedModel:
    """Specialized NN that counts objects of one class per frame."""

    def __init__(
        self,
        object_class: str,
        model_type: str = "softmax",
        hidden_size: int = 32,
        training_config: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        if model_type not in ("softmax", "mlp"):
            raise ValueError(f"model_type must be 'softmax' or 'mlp', got {model_type!r}")
        self.object_class = object_class
        self.model_type = model_type
        self.hidden_size = hidden_size
        self.training_config = training_config or TrainingConfig()
        self.seed = seed
        self.scaler = FeatureScaler()
        self.num_classes: int | None = None
        self._model: SoftmaxRegression | TinyMLP | None = None
        self.training_losses: list[float] = []

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._model is not None

    # -- training -------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        counts: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> "CountSpecializedModel":
        """Train the model on per-frame features and detector counts."""
        features = np.asarray(features, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.int64)
        if features.shape[0] != counts.shape[0]:
            raise ValueError(
                f"feature/count length mismatch: {features.shape[0]} vs {counts.shape[0]}"
            )
        self.num_classes = select_num_classes(counts)
        labels = np.clip(counts, 0, self.num_classes - 1)
        scaled = self.scaler.fit_transform(features)
        if self.model_type == "softmax":
            self._model = SoftmaxRegression(
                n_features=scaled.shape[1], n_classes=self.num_classes, seed=self.seed
            )
        else:
            self._model = TinyMLP(
                n_features=scaled.shape[1],
                n_classes=self.num_classes,
                hidden_size=self.hidden_size,
                seed=self.seed,
            )
        self.training_losses = train_classifier(
            self._model, scaled, labels, self.training_config, ledger
        )
        return self

    def _require_trained(self) -> None:
        if self._model is None or self.num_classes is None:
            raise RuntimeError("CountSpecializedModel used before fit()")

    def _charge(self, ledger: RuntimeLedger | None, n_frames: int) -> None:
        if ledger is not None:
            ledger.charge(StandardCosts.SPECIALIZED_NN, n_frames)

    # -- inference --------------------------------------------------------------

    def predict_proba(
        self, features: np.ndarray, ledger: RuntimeLedger | None = None
    ) -> np.ndarray:
        """Per-class probabilities (class index == object count)."""
        self._require_trained()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        self._charge(ledger, features.shape[0])
        return self._model.predict_proba(self.scaler.transform(features))

    def predict_counts(
        self, features: np.ndarray, ledger: RuntimeLedger | None = None
    ) -> np.ndarray:
        """Most probable count per frame (the query-rewriting signal)."""
        self._require_trained()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        self._charge(ledger, features.shape[0])
        return self._model.predict(self.scaler.transform(features)).astype(np.int64)

    def expected_counts(
        self, features: np.ndarray, ledger: RuntimeLedger | None = None
    ) -> np.ndarray:
        """Probability-weighted expected count per frame.

        A smoother signal than the argmax count; it is the control-variate
        auxiliary variable ``t`` used by the aggregation optimizer.
        """
        proba = self.predict_proba(features, ledger)
        class_values = np.arange(proba.shape[1], dtype=np.float64)
        return proba @ class_values

    def prob_at_least(
        self,
        features: np.ndarray,
        min_count: int,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """``P(count >= min_count)`` per frame (the scrubbing signal)."""
        if min_count < 0:
            raise ValueError(f"min_count must be non-negative, got {min_count}")
        proba = self.predict_proba(features, ledger)
        if min_count == 0:
            return np.ones(proba.shape[0], dtype=np.float64)
        threshold_class = min(min_count, proba.shape[1] - 1)
        return proba[:, threshold_class:].sum(axis=1)

    def mean_count(
        self, features: np.ndarray, ledger: RuntimeLedger | None = None
    ) -> float:
        """Mean predicted count over a set of frames (FCOUNT via rewriting)."""
        return float(np.mean(self.predict_counts(features, ledger)))

    def absolute_errors(
        self,
        features: np.ndarray,
        true_counts: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Per-frame absolute error of the predicted counts."""
        predictions = self.predict_counts(features, ledger)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        if predictions.shape[0] != true_counts.shape[0]:
            raise ValueError(
                f"prediction/truth length mismatch: {predictions.shape[0]} vs "
                f"{true_counts.shape[0]}"
            )
        return np.abs(predictions - true_counts).astype(np.float64)
