"""Threshold calibration and error estimation on the held-out set.

Two pieces of the paper's statistical machinery live here:

* :func:`calibrate_no_false_negative_threshold` — filters in content-based
  selection are "set to have no false negatives on the held-out set"
  (Section 8); the calibrated threshold is the largest score cut-off that
  still passes every positive held-out frame.
* :func:`bootstrap_error_estimate` — the aggregation optimizer "estimates the
  error of the specialized NN on a held-out set using the bootstrap"
  (Section 6.2) before deciding whether query rewriting is safe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ThresholdCalibration:
    """Result of calibrating a score threshold on the held-out set."""

    threshold: float
    selectivity: float
    positives: int
    false_negatives: int


def calibrate_no_false_negative_threshold(
    scores: np.ndarray,
    is_positive: np.ndarray,
    margin: float = 1e-9,
) -> ThresholdCalibration:
    """Choose the largest threshold with zero false negatives on held-out data.

    Parameters
    ----------
    scores:
        Filter scores per held-out frame (higher means "more likely relevant").
    is_positive:
        Boolean mask of frames that truly satisfy the predicate.
    margin:
        Small slack subtracted from the minimum positive score so that
        borderline positives still pass on unseen data.

    Returns
    -------
    ThresholdCalibration
        The threshold, the fraction of held-out frames that pass it
        (selectivity), the number of positives and the number of false
        negatives at the chosen threshold (zero by construction when any
        positive exists).
    """
    scores = np.asarray(scores, dtype=np.float64)
    is_positive = np.asarray(is_positive, dtype=bool)
    if scores.shape[0] != is_positive.shape[0]:
        raise ValueError(
            f"score/label length mismatch: {scores.shape[0]} vs {is_positive.shape[0]}"
        )
    if scores.size == 0:
        return ThresholdCalibration(
            threshold=float("-inf"), selectivity=1.0, positives=0, false_negatives=0
        )
    if not is_positive.any():
        # No positive examples: any threshold is "no false negatives"; pass
        # everything so the filter is a no-op rather than silently wrong.
        return ThresholdCalibration(
            threshold=float("-inf"),
            selectivity=1.0,
            positives=0,
            false_negatives=0,
        )
    threshold = float(scores[is_positive].min()) - margin
    passed = scores >= threshold
    false_negatives = int(np.sum(is_positive & ~passed))
    return ThresholdCalibration(
        threshold=threshold,
        selectivity=float(np.mean(passed)),
        positives=int(is_positive.sum()),
        false_negatives=false_negatives,
    )


def bootstrap_error_estimate(
    predictions: np.ndarray,
    truths: np.ndarray,
    n_bootstrap: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Bootstrap distribution of the absolute error of the mean.

    Resamples held-out frames with replacement; each resample yields one
    absolute difference between the mean prediction and the mean truth.  The
    caller compares a quantile of this distribution against the user's error
    tolerance.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if predictions.shape[0] != truths.shape[0]:
        raise ValueError(
            f"prediction/truth length mismatch: {predictions.shape[0]} vs {truths.shape[0]}"
        )
    if predictions.size == 0:
        raise ValueError("cannot bootstrap from zero held-out frames")
    if n_bootstrap < 1:
        raise ValueError(f"n_bootstrap must be >= 1, got {n_bootstrap}")
    rng = np.random.default_rng(seed)
    n = predictions.shape[0]
    errors = np.empty(n_bootstrap, dtype=np.float64)
    for i in range(n_bootstrap):
        idx = rng.integers(0, n, size=n)
        errors[i] = abs(float(predictions[idx].mean()) - float(truths[idx].mean()))
    return errors


def error_within_tolerance(
    bootstrap_errors: np.ndarray, tolerance: float, confidence: float
) -> bool:
    """Whether the bootstrap error distribution satisfies the user's bound.

    ``True`` when the ``confidence`` quantile of the bootstrap errors is below
    ``tolerance`` — i.e. ``P(error < tolerance) >= confidence`` in the
    notation of Algorithm 1.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    errors = np.asarray(bootstrap_errors, dtype=np.float64)
    if errors.size == 0:
        return False
    return float(np.quantile(errors, confidence)) < tolerance
