"""Multi-class count model: one counting head per object class.

For scrubbing queries over multiple classes (e.g. "at least one bus and at
least five cars"), the paper trains a single specialized NN that "would return
a separate confidence for 'car' and 'bus'" rather than a joint binary
classifier, for class-imbalance reasons (Section 7.1).  This reproduction
models the shared trunk / separate heads structure as one
:class:`~repro.specialization.count_model.CountSpecializedModel` per class
trained on the same features; the conjunction score is the sum of the
per-class ``P(count >= N)`` probabilities, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.runtime import RuntimeLedger
from repro.specialization.count_model import CountSpecializedModel
from repro.specialization.trainer import TrainingConfig


class MultiClassCountModel:
    """Per-class count heads over a shared feature representation."""

    def __init__(
        self,
        object_classes: list[str],
        model_type: str = "softmax",
        training_config: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        if not object_classes:
            raise ValueError("object_classes must not be empty")
        self.object_classes = list(object_classes)
        self.heads: dict[str, CountSpecializedModel] = {
            name: CountSpecializedModel(
                object_class=name,
                model_type=model_type,
                training_config=training_config,
                seed=seed + idx,
            )
            for idx, name in enumerate(self.object_classes)
        }

    @property
    def is_trained(self) -> bool:
        """Whether every head has been trained."""
        return all(head.is_trained for head in self.heads.values())

    def fit(
        self,
        features: np.ndarray,
        counts_per_class: dict[str, np.ndarray],
        ledger: RuntimeLedger | None = None,
    ) -> "MultiClassCountModel":
        """Train each head on the shared features and its class's counts."""
        for name in self.object_classes:
            if name not in counts_per_class:
                raise KeyError(f"missing counts for object class {name!r}")
            self.heads[name].fit(features, counts_per_class[name], ledger)
        return self

    def head(self, object_class: str) -> CountSpecializedModel:
        """The counting head for one object class."""
        try:
            return self.heads[object_class]
        except KeyError as exc:
            raise KeyError(
                f"no head for class {object_class!r}; trained classes: "
                f"{', '.join(self.object_classes)}"
            ) from exc

    def score_conjunction(
        self,
        features: np.ndarray,
        min_counts: dict[str, int],
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Scrubbing signal for a conjunction of per-class count thresholds.

        The paper uses "the sum of the probability of the frame having at
        least one bus and at least five cars"; we sum the per-head
        ``P(count >= N)`` values.  Only the requested classes contribute.
        """
        if not min_counts:
            raise ValueError("min_counts must not be empty")
        scores: np.ndarray | None = None
        for object_class, min_count in min_counts.items():
            head_scores = self.head(object_class).prob_at_least(
                features, min_count, ledger
            )
            scores = head_scores if scores is None else scores + head_scores
        assert scores is not None
        return scores

    def predict_counts(
        self, features: np.ndarray, ledger: RuntimeLedger | None = None
    ) -> dict[str, np.ndarray]:
        """Per-class count predictions for each frame."""
        return {
            name: head.predict_counts(features, ledger)
            for name, head in self.heads.items()
        }
