"""Binary presence model (the NoScope-style specialized NN).

Used as a label-based filter in content-based selection (Section 8) and by the
NoScope-replication query class of Section 4: it predicts whether at least one
object of the target class is present in the frame.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.runtime import RuntimeLedger, StandardCosts
from repro.specialization.features import FeatureScaler
from repro.specialization.models import SoftmaxRegression, TinyMLP
from repro.specialization.trainer import TrainingConfig, train_classifier


class BinaryPresenceModel:
    """Specialized NN predicting presence/absence of one object class."""

    def __init__(
        self,
        object_class: str,
        model_type: str = "softmax",
        hidden_size: int = 16,
        training_config: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        if model_type not in ("softmax", "mlp"):
            raise ValueError(f"model_type must be 'softmax' or 'mlp', got {model_type!r}")
        self.object_class = object_class
        self.model_type = model_type
        self.hidden_size = hidden_size
        self.training_config = training_config or TrainingConfig()
        self.seed = seed
        self.scaler = FeatureScaler()
        self._model: SoftmaxRegression | TinyMLP | None = None
        self.training_losses: list[float] = []

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._model is not None

    def fit(
        self,
        features: np.ndarray,
        present: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> "BinaryPresenceModel":
        """Train on per-frame features and boolean presence labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(present).astype(np.int64)
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"feature/label length mismatch: {features.shape[0]} vs {labels.shape[0]}"
            )
        scaled = self.scaler.fit_transform(features)
        if self.model_type == "softmax":
            self._model = SoftmaxRegression(
                n_features=scaled.shape[1], n_classes=2, seed=self.seed
            )
        else:
            self._model = TinyMLP(
                n_features=scaled.shape[1],
                n_classes=2,
                hidden_size=self.hidden_size,
                seed=self.seed,
            )
        self.training_losses = train_classifier(
            self._model, scaled, labels, self.training_config, ledger
        )
        return self

    def _require_trained(self) -> None:
        if self._model is None:
            raise RuntimeError("BinaryPresenceModel used before fit()")

    def predict_proba_present(
        self, features: np.ndarray, ledger: RuntimeLedger | None = None
    ) -> np.ndarray:
        """Probability that the class is present, per frame."""
        self._require_trained()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if ledger is not None:
            ledger.charge(StandardCosts.SPECIALIZED_NN, features.shape[0])
        return self._model.predict_proba(self.scaler.transform(features))[:, 1]

    def predict_present(
        self,
        features: np.ndarray,
        threshold: float = 0.5,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Boolean presence prediction per frame at a given threshold."""
        return self.predict_proba_present(features, ledger) >= threshold
