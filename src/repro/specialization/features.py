"""Feature preparation for specialized models.

Specialized NNs consume the cheap per-frame features produced by the video
substrate (grid colour / occupancy summaries).  The scaler standardises them
to zero mean and unit variance using statistics from the *training* split
only, mirroring the ImageNet normalisation step of Section 9.
"""

from __future__ import annotations

import numpy as np


class FeatureScaler:
    """Standardise features to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        """Compute per-dimension mean and standard deviation."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        # Guard constant dimensions against division by zero.
        std[std < 1e-8] = 1.0
        self.std_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the standardisation learned by :meth:`fit`."""
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("FeatureScaler.transform called before fit")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit the scaler and transform the same matrix."""
        return self.fit(features).transform(features)
