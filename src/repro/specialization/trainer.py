"""Training loop for specialized models.

Matches the recipe of Section 9: cross-entropy loss, minibatch SGD with
momentum 0.9, batch size 16 (configurable), a small number of epochs (the
paper uses one epoch over 150,000 frames).  Training time is charged to the
runtime ledger at the ``specialized_nn_train`` rate so that the "BlazeIt"
versus "BlazeIt (no train)" comparison of Figure 4 can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InsufficientTrainingDataError
from repro.metrics.runtime import RuntimeLedger, StandardCosts


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters for specialized-model training."""

    learning_rate: float = 0.1
    momentum: float = 0.9
    batch_size: int = 16
    epochs: int = 2
    weight_decay: float = 1e-4
    shuffle_seed: int = 0
    min_examples: int = 32

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")


def train_classifier(
    model,
    features: np.ndarray,
    labels: np.ndarray,
    config: TrainingConfig | None = None,
    ledger: RuntimeLedger | None = None,
) -> list[float]:
    """Train ``model`` in place and return the per-epoch mean loss.

    Parameters
    ----------
    model:
        Any object exposing ``sgd_step(features, labels, learning_rate,
        momentum, weight_decay)`` (see :mod:`repro.specialization.models`).
    features, labels:
        Training matrix and integer class labels.
    config:
        Training hyper-parameters; defaults match the paper's recipe.
    ledger:
        When given, training cost is charged at the ``specialized_nn_train``
        rate (one charge per example per epoch).
    """
    config = config or TrainingConfig()
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if features.ndim != 2:
        raise ValueError(f"expected 2-D features, got shape {features.shape}")
    if features.shape[0] != labels.shape[0]:
        raise ValueError(
            f"feature/label length mismatch: {features.shape[0]} vs {labels.shape[0]}"
        )
    n_examples = features.shape[0]
    if n_examples < config.min_examples:
        raise InsufficientTrainingDataError(
            f"need at least {config.min_examples} training examples, got {n_examples}"
        )
    rng = np.random.default_rng(config.shuffle_seed)
    epoch_losses: list[float] = []
    for _ in range(config.epochs):
        order = rng.permutation(n_examples)
        losses = []
        for start in range(0, n_examples, config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            loss = model.sgd_step(
                features[batch_idx],
                labels[batch_idx],
                learning_rate=config.learning_rate,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
            )
            losses.append(loss)
        epoch_losses.append(float(np.mean(losses)))
        if ledger is not None:
            ledger.charge(StandardCosts.SPECIALIZED_NN_TRAIN, n_examples)
    return epoch_losses
