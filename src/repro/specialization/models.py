"""Small classification models used as specialized NNs.

Two architectures are provided:

* :class:`SoftmaxRegression` — a linear softmax classifier; the default
  specialized model.  It is the numpy stand-in for the paper's "tiny ResNet":
  cheap, trainable in one pass, and correlated with (but not equal to) the
  detector's output.
* :class:`TinyMLP` — a one-hidden-layer MLP with ReLU activations, used by the
  capacity ablation.

Both are trained with minibatch SGD with momentum and cross-entropy loss
(matching Section 9's training recipe) via :func:`repro.specialization.trainer.
train_classifier`.
"""

from __future__ import annotations

import numpy as np


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    out = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


class SoftmaxRegression:
    """Linear softmax classifier trained with SGD + momentum."""

    def __init__(self, n_features: int, n_classes: int, seed: int = 0) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        rng = np.random.default_rng(seed)
        self.n_features = n_features
        self.n_classes = n_classes
        self.weights = rng.normal(0.0, 0.01, size=(n_features, n_classes))
        self.bias = np.zeros(n_classes)
        self._velocity_w = np.zeros_like(self.weights)
        self._velocity_b = np.zeros_like(self.bias)

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        """Raw class scores for a batch of feature vectors."""
        return features @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of feature vectors."""
        return _softmax(self.predict_logits(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class index for each feature vector."""
        return np.argmax(self.predict_logits(features), axis=-1)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss on a batch."""
        proba = self.predict_proba(features)
        picked = proba[np.arange(labels.shape[0]), labels]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def sgd_step(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        learning_rate: float,
        momentum: float,
        weight_decay: float = 0.0,
    ) -> float:
        """One SGD-with-momentum update on a minibatch; returns the batch loss."""
        batch_size = features.shape[0]
        proba = self.predict_proba(features)
        targets = _one_hot(labels, self.n_classes)
        error = (proba - targets) / batch_size
        grad_w = features.T @ error + weight_decay * self.weights
        grad_b = error.sum(axis=0)
        self._velocity_w = momentum * self._velocity_w - learning_rate * grad_w
        self._velocity_b = momentum * self._velocity_b - learning_rate * grad_b
        self.weights += self._velocity_w
        self.bias += self._velocity_b
        picked = proba[np.arange(batch_size), labels]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))


class TinyMLP:
    """One-hidden-layer MLP classifier trained with SGD + momentum."""

    def __init__(
        self, n_features: int, n_classes: int, hidden_size: int = 32, seed: int = 0
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if hidden_size < 1:
            raise ValueError(f"hidden_size must be >= 1, got {hidden_size}")
        rng = np.random.default_rng(seed)
        self.n_features = n_features
        self.n_classes = n_classes
        self.hidden_size = hidden_size
        scale1 = np.sqrt(2.0 / n_features)
        scale2 = np.sqrt(2.0 / hidden_size)
        self.w1 = rng.normal(0.0, scale1, size=(n_features, hidden_size))
        self.b1 = np.zeros(hidden_size)
        self.w2 = rng.normal(0.0, scale2, size=(hidden_size, n_classes))
        self.b2 = np.zeros(n_classes)
        self._vel = {
            "w1": np.zeros_like(self.w1),
            "b1": np.zeros_like(self.b1),
            "w2": np.zeros_like(self.w2),
            "b2": np.zeros_like(self.b2),
        }

    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(features @ self.w1 + self.b1, 0.0)
        logits = hidden @ self.w2 + self.b2
        return hidden, logits

    def predict_logits(self, features: np.ndarray) -> np.ndarray:
        """Raw class scores for a batch of feature vectors."""
        _, logits = self._forward(features)
        return logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of feature vectors."""
        return _softmax(self.predict_logits(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class index for each feature vector."""
        return np.argmax(self.predict_logits(features), axis=-1)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss on a batch."""
        proba = self.predict_proba(features)
        picked = proba[np.arange(labels.shape[0]), labels]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def sgd_step(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        learning_rate: float,
        momentum: float,
        weight_decay: float = 0.0,
    ) -> float:
        """One SGD-with-momentum update on a minibatch; returns the batch loss."""
        batch_size = features.shape[0]
        hidden, logits = self._forward(features)
        proba = _softmax(logits)
        targets = _one_hot(labels, self.n_classes)
        error = (proba - targets) / batch_size

        grad_w2 = hidden.T @ error + weight_decay * self.w2
        grad_b2 = error.sum(axis=0)
        grad_hidden = error @ self.w2.T
        grad_hidden[hidden <= 0.0] = 0.0
        grad_w1 = features.T @ grad_hidden + weight_decay * self.w1
        grad_b1 = grad_hidden.sum(axis=0)

        updates = {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}
        for name, grad in updates.items():
            self._vel[name] = momentum * self._vel[name] - learning_rate * grad
        self.w1 += self._vel["w1"]
        self.b1 += self._vel["b1"]
        self.w2 += self._vel["w2"]
        self.b2 += self._vel["b2"]

        picked = proba[np.arange(batch_size), labels]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))
