"""Specialized neural network substrate.

A specialized NN is a small model trained to mimic the full object detector on
a *simplified* task (Section 3): binary presence, per-frame counts, or
per-class counts.  The paper uses a "tiny ResNet" in PyTorch running at
~10,000 fps; this reproduction uses small numpy models (softmax regression and
a one-hidden-layer MLP) trained with SGD + momentum on the cheap per-frame
features of the synthetic video.  What matters for the optimizations is that
the models are orders of magnitude cheaper than detection and correlated but
imperfect with respect to the detector's counts — both properties hold.
"""

from repro.specialization.models import SoftmaxRegression, TinyMLP
from repro.specialization.trainer import TrainingConfig, train_classifier
from repro.specialization.features import FeatureScaler
from repro.specialization.count_model import CountSpecializedModel
from repro.specialization.binary_model import BinaryPresenceModel
from repro.specialization.multiclass import MultiClassCountModel
from repro.specialization.calibration import (
    calibrate_no_false_negative_threshold,
    bootstrap_error_estimate,
)

__all__ = [
    "SoftmaxRegression",
    "TinyMLP",
    "TrainingConfig",
    "train_classifier",
    "FeatureScaler",
    "CountSpecializedModel",
    "BinaryPresenceModel",
    "MultiClassCountModel",
    "calibrate_no_false_negative_threshold",
    "bootstrap_error_estimate",
]
