"""Query result types returned by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import RuntimeLedger


@dataclass
class QueryResult:
    """Fields common to every query result.

    Attributes
    ----------
    kind:
        The query class that was executed (``aggregate``, ``scrubbing``,
        ``selection`` or ``exact``).
    method:
        The physical strategy the optimizer chose (e.g.
        ``"specialized_rewrite"``, ``"control_variates"``, ``"importance"``).
    ledger:
        Simulated-runtime ledger for the execution.
    detection_calls:
        Number of full object-detection invocations charged.
    plan_description:
        Human-readable description of the executed plan.
    """

    kind: str
    method: str
    ledger: RuntimeLedger = field(default_factory=RuntimeLedger)
    detection_calls: int = 0
    plan_description: str = ""

    @property
    def runtime_seconds(self) -> float:
        """Total simulated runtime of the query."""
        return self.ledger.total_seconds


@dataclass
class AggregateResult(QueryResult):
    """Result of an aggregate query."""

    value: float = 0.0
    error_tolerance: float | None = None
    confidence: float = 0.95
    samples_used: int = 0
    half_width: float = 0.0
    correlation: float | None = None


@dataclass
class ScrubbingQueryResult(QueryResult):
    """Result of a cardinality-limited scrubbing query."""

    frames: list[int] = field(default_factory=list)
    timestamps: list[float] = field(default_factory=list)
    limit: int = 0
    satisfied: bool = False


@dataclass
class SelectionResult(QueryResult):
    """Result of a content-based selection query."""

    records: list[FrameRecord] = field(default_factory=list)
    matched_frames: list[int] = field(default_factory=list)
    frames_scanned: int = 0
    frames_after_filters: int = 0


@dataclass
class ExactResult(QueryResult):
    """Result of an exact (unoptimized) query."""

    records: list[FrameRecord] = field(default_factory=list)
    value: float | None = None
