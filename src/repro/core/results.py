"""Query result and plan-explanation types returned by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import ExecutionLedger, RuntimeLedger

if TYPE_CHECKING:  # pragma: no cover - circular at runtime (obs uses results)
    from repro.obs.profile import ExecutionProfile


@dataclass(frozen=True)
class OperatorNode:
    """One node of a physical plan's operator tree.

    ``detail`` carries operator-specific parameters (thresholds, filter
    classes, sampling configuration) as a short human-readable string.
    ``estimated_detector_calls`` and ``estimated_seconds`` are per-operator
    cost estimates from the statistics catalog; they are ``None`` on trees
    built without statistics (and on decision/bookkeeping nodes that cost
    nothing worth showing).
    """

    name: str
    detail: str = ""
    children: tuple[OperatorNode, ...] = ()
    estimated_detector_calls: int | None = None
    estimated_seconds: float | None = None

    def render(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the subtree."""
        label = f"{self.name}({self.detail})" if self.detail else self.name
        costs = []
        if self.estimated_detector_calls is not None:
            costs.append(f"~{self.estimated_detector_calls} detector calls")
        if self.estimated_seconds is not None:
            costs.append(f"~{self.estimated_seconds:.2f}s")
        if costs:
            label += f" [{', '.join(costs)}]"
        lines = ["  " * indent + label]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def flatten(self) -> list[str]:
        """Every operator name in the subtree, depth first."""
        names = [self.name]
        for child in self.children:
            names.extend(child.flatten())
        return names


@dataclass(frozen=True)
class PlanCandidateSummary:
    """One alternative the cost-based optimizer considered for a query.

    ``detector_calls`` and ``total_seconds`` are the candidate's estimated
    cost; ``chosen`` marks the alternative the optimizer (or a
    ``force_plan`` hint) actually selected.
    """

    name: str
    detector_calls: int
    total_seconds: float
    chosen: bool = False
    reason: str = ""

    def describe(self) -> str:
        """One-line rendering used by :meth:`PlanExplanation.render`."""
        text = f"{self.name}: ~{self.detector_calls} detector calls, ~{self.total_seconds:.2f}s"
        if self.chosen:
            text += " <- chosen"
        return text


@dataclass(frozen=True)
class PlanExplanation:
    """Structured description of the plan chosen for a query.

    ``str()`` preserves the historical one-line ``"<kind>: <plan>"`` format;
    the structured fields carry everything the one-liner used to hide: the
    operator tree (with per-operator cost estimates when statistics are
    available), the estimated number of object-detector invocations, the
    hints that shaped the plan and the alternatives the cost-based optimizer
    priced before choosing.
    """

    kind: str
    plan_summary: str
    operators: OperatorNode
    estimated_detector_calls: int
    hints_applied: str = "none"
    candidates: tuple[PlanCandidateSummary, ...] = ()
    #: The optimizer's parallelism verdict for routed execution — backend,
    #: worker count and justification (empty when not computed, e.g. plans
    #: built outside the cost-based optimizer).
    parallelism: str = ""

    def __str__(self) -> str:
        return f"{self.kind}: {self.plan_summary}"

    def render(self) -> str:
        """Multi-line rendering: summary, tree, estimates, hints, candidates."""
        lines = [
            str(self),
            self.operators.render(indent=1),
            f"  estimated detector calls: {self.estimated_detector_calls}",
            f"  hints: {self.hints_applied}",
        ]
        if self.parallelism:
            lines.append(f"  parallelism: {self.parallelism}")
        if self.candidates:
            lines.append("  candidates:")
            lines.extend(f"    {candidate.describe()}" for candidate in self.candidates)
        return "\n".join(lines)


@dataclass
class QueryResult:
    """Fields common to every query result.

    Attributes
    ----------
    kind:
        The query class that was executed (``aggregate``, ``scrubbing``,
        ``selection`` or ``exact``).
    method:
        The physical strategy the optimizer chose (e.g.
        ``"specialized_rewrite"``, ``"control_variates"``, ``"importance"``).
    ledger:
        Simulated-runtime ledger for the execution.
    detection_calls:
        Number of full object-detection invocations charged.
    plan_description:
        Human-readable description of the executed plan.
    stop_reason:
        Why execution ended early (``"limit"``, ``"ci_width"``,
        ``"max_detector_calls"`` or ``"cancelled"``), or ``None`` when the
        plan ran to natural completion.  Blocking callers use this to tell a
        truncated partial answer from a full one without consuming the event
        stream themselves.
    """

    kind: str
    method: str
    ledger: RuntimeLedger = field(default_factory=RuntimeLedger)
    detection_calls: int = 0
    plan_description: str = ""
    stop_reason: str | None = None
    #: EXPLAIN ANALYZE payload, attached when the execution was traced
    #: (``execute(analyze=True)`` or an enabled tracer).  Display-only:
    #: excluded from equality and from wire fingerprints, so traced results
    #: stay byte-identical to untraced ones.
    profile: "ExecutionProfile | None" = field(default=None, compare=False)

    @property
    def runtime_seconds(self) -> float:
        """Total simulated runtime of the query."""
        return self.ledger.total_seconds

    @property
    def execution_ledger(self) -> ExecutionLedger:
        """The per-execution ledger (frames decoded, detector calls, batches).

        Every plan executed through the streaming protocol attaches an
        :class:`~repro.metrics.runtime.ExecutionLedger`; results constructed
        by hand (baselines, tests) may carry a plain ``RuntimeLedger``, which
        raises here to make the missing accounting explicit.
        """
        if not isinstance(self.ledger, ExecutionLedger):
            raise TypeError(
                "this result was not produced by the streaming execution "
                "protocol; its ledger carries no execution counters"
            )
        return self.ledger


@dataclass
class AggregateResult(QueryResult):
    """Result of an aggregate query."""

    value: float = 0.0
    error_tolerance: float | None = None
    confidence: float = 0.95
    samples_used: int = 0
    half_width: float = 0.0
    correlation: float | None = None


@dataclass
class ScrubbingQueryResult(QueryResult):
    """Result of a cardinality-limited scrubbing query."""

    frames: list[int] = field(default_factory=list)
    timestamps: list[float] = field(default_factory=list)
    limit: int = 0
    satisfied: bool = False


@dataclass
class SelectionResult(QueryResult):
    """Result of a content-based selection query."""

    records: list[FrameRecord] = field(default_factory=list)
    matched_frames: list[int] = field(default_factory=list)
    frames_scanned: int = 0
    frames_after_filters: int = 0


@dataclass
class ExactResult(QueryResult):
    """Result of an exact (unoptimized) query."""

    records: list[FrameRecord] = field(default_factory=list)
    value: float | None = None
