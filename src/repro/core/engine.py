"""The BlazeIt engine: register videos, build labeled sets, run FrameQL queries.

The session API is the primary query surface — prepare once, execute many::

    from repro import BlazeIt, Q, FCOUNT

    engine = BlazeIt()
    engine.register_scenario("taipei", num_frames=4000)

    with engine.session() as session:
        prepared = session.prepare(
            Q.select(FCOUNT()).from_("taipei").where(cls="car")
            .error_within(0.1).confidence(0.95)
        )
        result = prepared.execute()
        print(result.value, result.runtime_seconds)
        print(prepared.explain().render())

``engine.query(text)`` remains as a one-shot convenience (a throwaway
session under the hood).  The historical ``scrubbing_indexed`` /
``selection_filter_classes`` keyword arguments (deprecated since the typed
hints landed) have been removed; pass ``hints=QueryHints(...)``.

The engine owns the video store, the per-video detectors, the labeled sets
(training + held-out days annotated by the detector), the statistics catalog
computed from them, the UDF registry, the cost-based optimizer and the root
random seed sequence from which every session and query execution derives
its own independent RNG stream.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from typing import TYPE_CHECKING, Any

from repro.catalog.statistics import StatisticsCatalog
from repro.core.config import BlazeItConfig
from repro.core.events import ExecutionStream, StopConditions
from repro.core.context import ExecutionContext
from repro.parallel.cache import SharedDetectionCache, get_process_cache
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.core.results import PlanExplanation, QueryResult
from repro.detection.base import ObjectDetector
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError, UnknownVideoError
from repro.index.builder import build_video_index
from repro.index.sketches import DEFAULT_RANGE_SIZE
from repro.index.store import DEFAULT_SEGMENT_FRAMES, PersistentIndex
from repro.index.view import IndexView
from repro.frameql.analyzer import QuerySpec, analyze
from repro.frameql.parser import parse
from repro.optimizer.base import PhysicalPlan
from repro.optimizer.cost import CostBasedOptimizer
from repro.udf.registry import UDFRegistry, default_udf_registry
from repro.video.scenarios import DEFAULT_SPLIT_FRAMES, generate_scenario
from repro.video.store import VideoStore
from repro.video.synthetic import SyntheticVideo

if TYPE_CHECKING:  # pragma: no cover - circular at runtime (api uses engine)
    from repro.api.hints import QueryHints
    from repro.api.session import QuerySession


class BlazeIt:
    """Declarative video analytics engine over the synthetic video substrate."""

    def __init__(
        self,
        detector: ObjectDetector | None = None,
        config: BlazeItConfig | None = None,
        udf_registry: UDFRegistry | None = None,
        catalog: StatisticsCatalog | None = None,
        shared_cache: SharedDetectionCache | None = None,
        index_dir: str | Path | None = None,
    ) -> None:
        self.config = config or BlazeItConfig()
        self.default_detector = detector or SimulatedDetector.mask_rcnn()
        self.udf_registry = udf_registry or default_udf_registry()
        self.store = VideoStore()
        # A preloaded catalog (``StatisticsCatalog.load``) lets shard pruning
        # and cost estimates survive across processes; registering videos
        # with labeled sets still refreshes the affected entries.
        self.catalog = catalog if catalog is not None else StatisticsCatalog()
        # The persistent ingest-time index: committed detection segments plus
        # range sketches.  Catalog entries persisted with an index generation
        # are registered immediately (cheap JSON); the expensive shared-cache
        # preload stays behind the explicit :meth:`warm_start`.
        self._index_store: PersistentIndex | None = None
        self._index_views: dict[str, IndexView] = {}
        if index_dir is not None:
            self._index_store = PersistentIndex(Path(index_dir))
            for index in self._index_store.entries():
                try:
                    stats = index.statistics()
                    if stats is not None and index.video not in self.catalog:
                        self.catalog.register(stats)
                finally:
                    index.close()
        self.optimizer = CostBasedOptimizer(
            self.udf_registry,
            catalog=self.catalog,
            config=self.config,
            index_lookup=self._index_attachable,
        )
        self._detectors: dict[str, ObjectDetector] = {}
        self._labeled_sets: dict[str, LabeledSet] = {}
        self._recorded: dict[str, RecordedDetections] = {}
        # The shared cross-query detection cache: an explicit instance wins
        # (tests, dedicated serving tiers); otherwise the config's byte
        # budget selects the process-wide cache, and 0 disables caching.
        if shared_cache is not None:
            self._shared_cache: SharedDetectionCache | None = shared_cache
        elif self.config.shared_cache_bytes > 0:
            self._shared_cache = get_process_cache(self.config.shared_cache_bytes)
        else:
            self._shared_cache = None
        # Root of the engine's randomness: sessions and query executions spawn
        # independent child streams, so repeated approximate queries draw
        # different samples while a fixed seed keeps whole runs reproducible.
        self._seed_sequence = np.random.SeedSequence(self.config.seed)

    # -- registration -------------------------------------------------------------------

    def register_video(
        self,
        name: str,
        test_video: SyntheticVideo,
        train_video: SyntheticVideo | None = None,
        heldout_video: SyntheticVideo | None = None,
        detector: ObjectDetector | None = None,
        build_labeled_set: bool = True,
    ) -> None:
        """Register a video (and optionally its labeled-set days) under ``name``.

        When ``train_video`` and ``heldout_video`` are given and
        ``build_labeled_set`` is true, the configured detector is run over both
        days offline to build the labeled set (not charged to any query), and
        the statistics catalog gains the per-class statistics the cost-based
        optimizer prices plans with.
        """
        self.store.register(name, test_video)
        if detector is not None:
            self._detectors[name] = detector
        if train_video is not None and heldout_video is not None and build_labeled_set:
            labeled = LabeledSet.build(
                train_video, heldout_video, self.detector_for(name)
            )
            self._labeled_sets[name] = labeled
            self.catalog.register_from_labeled_set(
                name,
                test_video.num_frames,
                labeled,
                self.detector_for(name).cost.seconds_per_call,
                training_epochs=self.config.training.epochs,
            )

    def register_scenario(
        self,
        scenario_name: str,
        name: str | None = None,
        num_frames: int = DEFAULT_SPLIT_FRAMES,
        detector: ObjectDetector | None = None,
    ) -> None:
        """Generate and register one of the built-in scenarios (Table 3).

        Three splits are generated: a training day and a held-out day (which
        become the labeled set) and a test day (the unseen video queries run
        against), each of ``num_frames`` frames.
        """
        name = name or scenario_name
        train = generate_scenario(scenario_name, "train", num_frames)
        heldout = generate_scenario(scenario_name, "heldout", num_frames)
        test = generate_scenario(scenario_name, "test", num_frames)
        self.register_video(
            name,
            test_video=test,
            train_video=train,
            heldout_video=heldout,
            detector=detector,
        )

    def attach_labeled_set(self, name: str, labeled: LabeledSet) -> None:
        """Attach a pre-built labeled set for ``name``.

        Registers the derived per-class statistics with the catalog as well,
        exactly as :meth:`register_video` does when it builds the labeled set
        itself.  Used by harnesses that share one expensive labeled set across
        several engine configurations.
        """
        if name not in self.store:
            raise UnknownVideoError(
                f"register the video {name!r} before attaching its labeled set "
                f"(available: {', '.join(self.videos()) or '<none>'})"
            )
        self._labeled_sets[name] = labeled
        self.catalog.register_from_labeled_set(
            name,
            self.store.get(name).num_frames,
            labeled,
            self.detector_for(name).cost.seconds_per_call,
            training_epochs=self.config.training.epochs,
        )

    def attach_recorded(self, name: str, recorded: RecordedDetections) -> None:
        """Attach a pre-computed detector recording for the test day of ``name``.

        Plans that "call the detector" then replay the recording while still
        charging detection cost, which makes repeated benchmark runs cheap in
        wall-clock time without changing any measured quantity.
        """
        self._recorded[name] = recorded

    def record_test_day(self, name: str) -> RecordedDetections:
        """Run the detector once over the test day of ``name`` and attach it."""
        recorded = RecordedDetections.build(self.store.get(name), self.detector_for(name))
        self.attach_recorded(name, recorded)
        return recorded

    # -- accessors -----------------------------------------------------------------------

    def detector_for(self, name: str) -> ObjectDetector:
        """The detector configured for a video (falls back to the default)."""
        return self._detectors.get(name, self.default_detector)

    def labeled_set(self, name: str) -> LabeledSet | None:
        """The labeled set for a video, or ``None`` if it was never built."""
        return self._labeled_sets.get(name)

    def videos(self) -> list[str]:
        """Names of all registered videos."""
        return self.store.names()

    # -- sessions ------------------------------------------------------------------------

    def session(
        self, video: str | None = None, hints: QueryHints | None = None
    ) -> QuerySession:
        """Open a query session: prepared statements, shared context, RNG streams.

        ``video`` sets the default video for builder queries without a
        ``from_`` clause; ``hints`` sets the session-wide default hints.
        """
        from repro.api.session import QuerySession

        return QuerySession(self, video=video, hints=hints)

    def _spawn_seed_sequence(self) -> np.random.SeedSequence:
        """A child seed sequence (one per session, or per one-shot context)."""
        return self._seed_sequence.spawn(1)[0]

    # -- planning and execution ----------------------------------------------------------------

    def analyze(self, query_text: str) -> QuerySpec:
        """Parse and semantically analyze a FrameQL query."""
        return analyze(parse(query_text))

    def plan(
        self, query_text: str, hints: QueryHints | None = None
    ) -> tuple[QuerySpec, PhysicalPlan]:
        """Analyze a query and build (but do not run) its physical plan."""
        from repro.api.hints import require_hints

        require_hints(hints)
        spec = self.analyze(query_text)
        plan = self.optimizer.plan(spec, hints=hints)
        return spec, plan

    def explain(self, query_text: str, hints: QueryHints | None = None) -> str:
        """One-line description of the plan the optimizer would choose.

        For the structured form (operator tree, detector-call estimate,
        hints), use ``engine.session().explain(...)``, which returns a
        :class:`~repro.core.results.PlanExplanation`.
        """
        return str(self.explain_query(query_text, hints=hints))

    def explain_query(
        self, query_text: str, hints: QueryHints | None = None
    ) -> PlanExplanation:
        """Structured explanation of the chosen plan."""
        return self.session().explain(query_text, hints=hints)

    def shared_cache(self) -> SharedDetectionCache | None:
        """The engine's shared cross-query detection cache (``None`` if off)."""
        return self._shared_cache

    def _cache_key_for(self, video_name: str) -> str:
        """Namespace of one video's frames in the shared detection cache.

        Folds in the detector's identity (name, seed, threshold when
        present), so the same video queried under two detectors never shares
        entries.
        """
        detector = self.detector_for(video_name)
        video = self.store.get(video_name)
        return "|".join(
            str(part)
            for part in (
                video_name,
                video.spec.seed,
                detector.name,
                getattr(detector, "seed", ""),
                getattr(detector, "confidence_threshold", ""),
            )
        )

    def execution_context(self, video_name: str) -> ExecutionContext:
        """Build the execution context for a registered video.

        Each context receives its own RNG stream derived from the engine's
        root seed sequence, so two contexts never share sample draws.
        """
        if video_name not in self.store:
            raise UnknownVideoError(
                f"video {video_name!r} is not registered "
                f"(available: {', '.join(self.videos()) or '<none>'})"
            )
        seed_sequence = self._spawn_seed_sequence()
        return ExecutionContext(
            video=self.store.get(video_name),
            detector=self.detector_for(video_name),
            udf_registry=self.udf_registry,
            config=self.config,
            labeled_set=self._labeled_sets.get(video_name),
            recorded=self._recorded.get(video_name),
            rng=np.random.default_rng(seed_sequence),
            seed_sequence=seed_sequence,
            shared_cache=self._shared_cache,
            cache_key=self._cache_key_for(video_name),
            index_view=self._index_view_for(video_name),
        )

    # -- persistent index ---------------------------------------------------------------

    def _index_view_for(self, video_name: str) -> IndexView | None:
        """The attached index view for a video, or ``None`` when no committed
        generation matches the video's current cache-key identity."""
        if self._index_store is None or video_name not in self.store:
            return None
        cache_key = self._cache_key_for(video_name)
        view = self._index_views.get(video_name)
        if view is not None and view.cache_key == cache_key:
            return view
        index = self._index_store.open(video_name, cache_key)
        if index is None:
            return None
        view = IndexView(index)
        self._index_views[video_name] = view
        return view

    def _index_attachable(self, video_name: str) -> bool:
        """Whether queries over ``video_name`` will be served by the index."""
        return self._index_view_for(video_name) is not None

    def build_index(
        self,
        video_name: str,
        *,
        range_size: int = DEFAULT_RANGE_SIZE,
        segment_frames: int = DEFAULT_SEGMENT_FRAMES,
        include_statistics: bool = True,
    ) -> dict[str, Any]:
        """Run the ingest pipeline once and commit a new index generation.

        The build runs the detector over every frame through the ordinary
        charging chokepoints (so existing caches are reused), persists the
        columnar segments, the range sketch and — when available — the
        statistics-catalog entry, and commits atomically: a crash leaves the
        previous generation fully readable.
        """
        if self._index_store is None:
            raise ConfigurationError(
                "this engine has no index store; construct it with "
                "BlazeIt(index_dir=...) to build or serve persistent indexes"
            )
        stale = self._index_views.pop(video_name, None)
        if stale is not None:
            stale.close()
        context = self.execution_context(video_name)
        if context.index_view is not None:
            # Build from ground truth, not from the previous generation.
            reopened = self._index_views.pop(video_name, None)
            if reopened is not None:
                reopened.close()
            context = dataclasses.replace(context, index_view=None)
        statistics = (
            self.catalog.get(video_name)
            if include_statistics and video_name in self.catalog
            else None
        )
        return build_video_index(
            self._index_store,
            video_name,
            context,
            range_size=range_size,
            segment_frames=segment_frames,
            statistics=statistics,
        )

    def warm_start(self) -> dict[str, Any]:
        """Preload the shared cache and catalog from every committed index.

        After this, a fresh process answers hot queries with zero detector
        calls even for videos whose index view is bypassed (e.g. via
        ``QueryHints(use_index=False)``): every indexed frame sits in the
        shared cross-query cache under its index's cache key.
        """
        report: dict[str, Any] = {
            "enabled": self._index_store is not None,
            "videos": [],
            "frames_loaded": 0,
            "catalog_entries": 0,
        }
        if self._index_store is None:
            return report
        for index in self._index_store.entries():
            try:
                stats = index.statistics()
                if stats is not None and index.video not in self.catalog:
                    self.catalog.register(stats)
                    report["catalog_entries"] += 1
                if self._shared_cache is not None:
                    for _segment, results in index.iter_segments():
                        self._shared_cache.put_many(
                            index.cache_key,
                            {r.frame_index: r for r in results},
                        )
                        report["frames_loaded"] += len(results)
                report["videos"].append(index.video)
            finally:
                index.close()
        return report

    def index_status(self) -> dict[str, Any]:
        """Store summary plus per-view serve counters (service status route).

        Each call also refreshes the metrics registry's per-video index
        gauges, so a ``/metrics`` scrape preceded by any status probe sees
        current hit/skip totals.
        """
        if self._index_store is None:
            return {"enabled": False}
        from repro.obs.metrics import get_registry

        registry = get_registry()
        status = self._index_store.status()
        status["enabled"] = True
        attached: dict[str, Any] = {}
        for name, view in sorted(self._index_views.items()):
            counters = view.counters()
            attached[name] = counters
            labels = {"video": name}
            registry.set_gauge(
                "repro_index_frames_served",
                counters["frames_served"],
                labels,
                help="Frames served from the attached index view.",
            )
            registry.set_gauge(
                "repro_index_frames_skipped",
                counters["frames_skipped"],
                labels,
                help="Frames skipped via the index view's emptiness sketch.",
            )
        status["attached"] = attached
        return status

    def query(
        self,
        query_text: str,
        rng: np.random.Generator | None = None,
        hints: QueryHints | None = None,
    ) -> QueryResult:
        """Optimize and execute a FrameQL query in a throwaway session.

        Compatibility wrapper over :meth:`session`: each call pays the full
        parse/analyze/plan cost.  Workloads that repeat queries should hold a
        session and use ``prepare``/``execute`` instead.
        """
        from repro.api.hints import require_hints

        require_hints(hints)
        return self.session().prepare(query_text, hints=hints).execute(rng=rng)

    def stream(
        self,
        query_text: str,
        hints: QueryHints | None = None,
        rng: np.random.Generator | None = None,
        stop: StopConditions | None = None,
        **params: object,
    ) -> ExecutionStream:
        """Optimize a query and stream its execution events (throwaway session).

        One-shot convenience over :meth:`session`: returns a lazy
        :class:`~repro.core.events.ExecutionStream` yielding incremental
        events (progress, running estimates, verified hits) terminated by a
        ``Completed`` event with the full result.  Supports early termination
        via ``stop=StopConditions(...)`` and ``stream.cancel()``.
        """
        from repro.api.hints import require_hints

        require_hints(hints)
        return self.session().stream(
            query_text, hints=hints, rng=rng, stop=stop, **params
        )
