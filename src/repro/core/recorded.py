"""Recorded detector output over a whole video.

The paper notes that "because of the extreme computational cost of running
object detection, we ran the object detection method once and recorded the
results" (Section 10.2); runtimes are then extrapolated from the number of
detection calls.  :class:`RecordedDetections` is that recording: the detector
is run once over every frame (wall-clock cost paid once, outside any query),
and query plans that "call the detector" read from the recording while still
charging the detector's simulated cost to their runtime ledger.
"""

from __future__ import annotations

import numpy as np

from repro.detection.base import DetectionResult, ObjectDetector
from repro.metrics.runtime import RuntimeLedger
from repro.video.synthetic import SyntheticVideo


class RecordedDetections:
    """Cache of detector output for every frame of one video."""

    def __init__(
        self,
        video: SyntheticVideo,
        detector: ObjectDetector,
        results: list[DetectionResult],
    ) -> None:
        if len(results) != video.num_frames:
            raise ValueError(
                f"expected {video.num_frames} recorded frames, got {len(results)}"
            )
        self.video = video
        self.detector = detector
        self._results = results
        self._count_cache: dict[str, np.ndarray] = {}

    @classmethod
    def build(
        cls, video: SyntheticVideo, detector: ObjectDetector
    ) -> "RecordedDetections":
        """Run the detector over every frame of ``video`` and record the output.

        Materialisation goes through the detector's vectorized batch path
        (:meth:`~repro.detection.base.ObjectDetector.detect_many`), which is
        bit-for-bit identical to a per-frame ``detect`` loop.
        """
        results = detector.detect_many(video, np.arange(video.num_frames))
        return cls(video, detector, results)

    # -- access ---------------------------------------------------------------

    @property
    def num_frames(self) -> int:
        """Number of recorded frames."""
        return len(self._results)

    def result(
        self, frame_index: int, ledger: RuntimeLedger | None = None
    ) -> DetectionResult:
        """The recorded detection result for one frame.

        Charges one detector invocation to ``ledger`` when provided: reading
        the recording stands in for actually running the detector.
        """
        if ledger is not None:
            ledger.charge(self.detector.cost)
        return self._results[frame_index]

    def observed_classes(self) -> set[str]:
        """Every object class that appears anywhere in the recording."""
        return {
            detection.object_class
            for result in self._results
            for detection in result.detections
        }

    def counts(self, object_class: str) -> np.ndarray:
        """Per-frame detected count of one object class (no cost charged)."""
        cached = self._count_cache.get(object_class)
        if cached is None:
            cached = np.array(
                [result.count(object_class) for result in self._results],
                dtype=np.int64,
            )
            self._count_cache[object_class] = cached
        return cached

    def count_at(
        self,
        frame_index: int,
        object_class: str,
        ledger: RuntimeLedger | None = None,
    ) -> int:
        """Detected count of one class at one frame, charging a detection call."""
        if ledger is not None:
            ledger.charge(self.detector.cost)
        return self._results[frame_index].count(object_class)

    def presence(self, object_class: str) -> np.ndarray:
        """Boolean per-frame presence of one object class (no cost charged)."""
        return self.counts(object_class) > 0

    def satisfies_min_counts(
        self,
        frame_index: int,
        min_counts: dict[str, int],
        ledger: RuntimeLedger | None = None,
    ) -> bool:
        """Whether a frame satisfies a conjunction of per-class count thresholds."""
        if ledger is not None:
            ledger.charge(self.detector.cost)
        result = self._results[frame_index]
        return all(
            result.count(object_class) >= min_count
            for object_class, min_count in min_counts.items()
        )

    def frames_satisfying(self, min_counts: dict[str, int]) -> np.ndarray:
        """All frame indices satisfying a count conjunction (ground truth, free)."""
        mask = np.ones(self.num_frames, dtype=bool)
        for object_class, min_count in min_counts.items():
            mask &= self.counts(object_class) >= min_count
        return np.nonzero(mask)[0]

    def mean_count(self, object_class: str) -> float:
        """The true frame-averaged count (the FCOUNT ground truth)."""
        counts = self.counts(object_class)
        if counts.size == 0:
            return 0.0
        return float(counts.mean())
