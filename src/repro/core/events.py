"""The streaming execution protocol: typed events, stop conditions, streams.

Every physical plan executes as a pull-based stream of typed
:class:`ExecutionEvent` objects rather than a single blocking call:

* :class:`Progress` — frames scanned and detector calls so far, per phase;
* :class:`EstimateUpdate` — the running AQP estimate and its CI half-width;
* :class:`ScrubbingHit` — one verified frame, emitted the moment it is found;
* :class:`SelectionWindow` — one contiguous window of matched frames;
* :class:`Completed` — the terminal event carrying the full
  :class:`~repro.core.results.QueryResult` (blocking ``execute()`` is defined
  as "drain the stream and return this result").

Execution is steered by an :class:`ExecutionControl`, which carries the typed
:class:`StopConditions` (``limit``, ``ci_width``, ``max_detector_calls``) and
the cooperative cancellation flag that :meth:`ExecutionStream.cancel` sets.
Plans check the control at every batch boundary, so cancellation and budget
exhaustion still produce a well-formed partial result and a terminal
``Completed`` event.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import ClassVar

from repro.core.results import QueryResult
from repro.errors import ConfigurationError, ExecutionError
from repro.metrics.runtime import ExecutionLedger
from repro.stopping import NO_STOP, CancellationToken, StopConditions

__all__ = [
    "ExecutionEvent",
    "Progress",
    "ShardProgress",
    "EstimateUpdate",
    "ScrubbingHit",
    "SelectionWindow",
    "Completed",
    "StopConditions",
    "NO_STOP",
    "CancellationToken",
    "DEFAULT_BATCH_SIZE",
    "ExecutionControl",
    "ExecutionStream",
    "event_wire_types",
    "timed_stream",
]


@dataclass(frozen=True)
class ExecutionEvent:
    """Base class of every event a plan's stream can yield.

    ``wire_name`` is the event's stable type tag on the wire: the query
    service (:mod:`repro.service.protocol`) serialises events under it, and
    SSE consumers receive it as the ``event:`` field.  Renaming one is a
    wire-protocol break, not a refactor.
    """

    wire_name: ClassVar[str] = "event"


@dataclass(frozen=True)
class Progress(ExecutionEvent):
    """Periodic progress report: how much work the plan has done so far.

    Attributes
    ----------
    phase:
        Which stage of the plan is running (e.g. ``"detection_scan"``,
        ``"train_specialized_nn"``, ``"verification"``).
    frames_scanned:
        Distinct frames decoded so far in this execution.
    detector_calls:
        Object-detector invocations charged so far in this execution.
    total_frames:
        Size of the frame population being processed, when known.
    """

    wire_name: ClassVar[str] = "progress"

    phase: str
    frames_scanned: int = 0
    detector_calls: int = 0
    total_frames: int | None = None


@dataclass(frozen=True)
class ShardProgress(ExecutionEvent):
    """Progress of one shard worker under parallel execution.

    Emitted by the parallel stream merger (interleaved with the driving
    plan's own events, in worker-arrival order) so consumers can watch the
    per-shard prefetch pipeline advance.  Informational only: shard progress
    never carries result data and is excluded from the execution ledger's
    event counters, keeping parallel and sequential ledgers comparable.
    """

    wire_name: ClassVar[str] = "shard_progress"

    shard: int
    start_frame: int
    end_frame: int
    frames_computed: int
    shard_frames: int
    done: bool = False


@dataclass(frozen=True)
class EstimateUpdate(ExecutionEvent):
    """Running AQP estimate after one sampling round.

    ``estimate`` and ``half_width`` are both in the query's own units
    (``FCOUNT`` per-frame mean or ``COUNT`` total), so ``estimate ±
    half_width`` is always the confidence interval at the query's confidence
    level.  ``StopConditions.ci_width`` is compared in these same units.
    """

    wire_name: ClassVar[str] = "estimate_update"

    estimate: float
    half_width: float
    samples_used: int
    confidence: float


@dataclass(frozen=True)
class ScrubbingHit(ExecutionEvent):
    """One detector-verified frame satisfying the scrubbing predicate."""

    wire_name: ClassVar[str] = "scrubbing_hit"

    frame_index: int
    timestamp: float
    hits_so_far: int
    limit: int


@dataclass(frozen=True)
class SelectionWindow(ExecutionEvent):
    """One contiguous window of frames matching the selection predicate."""

    wire_name: ClassVar[str] = "selection_window"

    start_frame: int
    end_frame: int
    matched_frames: int
    windows_so_far: int


@dataclass(frozen=True)
class Completed(ExecutionEvent):
    """Terminal event: the execution finished and produced ``result``.

    ``stop_reason`` is ``None`` for a natural completion, otherwise the stop
    condition that terminated execution early (``"limit"``, ``"ci_width"``,
    ``"max_detector_calls"`` or ``"cancelled"``).
    """

    wire_name: ClassVar[str] = "completed"

    result: QueryResult
    stop_reason: str | None = None


def event_wire_types() -> dict[str, type[ExecutionEvent]]:
    """Every concrete event class keyed by its :attr:`~ExecutionEvent.wire_name`.

    The serialization hook for the wire protocol: codecs iterate this map
    instead of hard-coding the event taxonomy, so a new event type added here
    (with a distinct ``wire_name``) is picked up by
    :mod:`repro.service.protocol` automatically.
    """
    return {
        cls.wire_name: cls
        for cls in (
            Progress,
            ShardProgress,
            EstimateUpdate,
            ScrubbingHit,
            SelectionWindow,
            Completed,
        )
    }


#: Events/frames a plan processes between control checks and progress events.
DEFAULT_BATCH_SIZE = 64


class ExecutionControl:
    """Mutable per-execution control block shared by a plan and its stream.

    Carries the typed stop conditions, the batch size at which plans emit
    progress and re-check termination, and the cooperative cancellation flag.
    Plans call the query methods at batch boundaries and finalise a partial
    result when any of them fires; the winning condition is recorded in
    :attr:`stop_reason` and surfaced on the terminal :class:`Completed` event.
    """

    def __init__(
        self,
        stop: StopConditions | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cancellation: CancellationToken | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.stop = stop if stop is not None else NO_STOP
        self.batch_size = batch_size
        self.stop_reason: str | None = None
        # A thread-safe token rather than a bare flag: under parallel
        # execution the same token is watched by every shard worker, so one
        # cancel (or a LIMIT satisfied across shards) stops them all.
        self.cancellation = cancellation if cancellation is not None else CancellationToken()

    def cancel(self) -> None:
        """Request cooperative cancellation (honoured at the next batch boundary)."""
        self.cancellation.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self.cancellation.is_set()

    # -- condition queries (plans call these at batch boundaries) ------------------

    def effective_limit(self, plan_limit: int) -> int:
        """The query's limit tightened by the stop conditions' ``limit``."""
        if self.stop.limit is None:
            return plan_limit
        return min(plan_limit, self.stop.limit)

    def batch_allowance(self, ledger: ExecutionLedger) -> int:
        """The batch size, shrunk so one batch cannot overshoot the budget."""
        if self.stop.max_detector_calls is None:
            return self.batch_size
        remaining = self.stop.max_detector_calls - ledger.detector_calls
        return max(1, min(self.batch_size, remaining))

    def out_of_budget(self, ledger: ExecutionLedger) -> bool:
        """Whether the detector-call budget has been exhausted."""
        return (
            self.stop.max_detector_calls is not None
            and ledger.detector_calls >= self.stop.max_detector_calls
        )

    def ci_reached(self, half_width: float) -> bool:
        """Whether the CI half-width satisfies the ``ci_width`` stop condition."""
        return self.stop.ci_width is not None and half_width <= self.stop.ci_width

    def should_stop(
        self, ledger: ExecutionLedger, half_width: float | None = None
    ) -> bool:
        """Check every applicable condition, recording the first that fires."""
        if self.cancelled:
            self.note_stop("cancelled")
            return True
        if self.out_of_budget(ledger):
            self.note_stop("max_detector_calls")
            return True
        if half_width is not None and self.ci_reached(half_width):
            self.note_stop("ci_width")
            return True
        return False

    def note_stop(self, reason: str) -> None:
        """Record the stop condition that terminated execution (first one wins)."""
        if self.stop_reason is None:
            self.stop_reason = reason


class ExecutionStream:
    """Iterator over a plan's execution events, with cooperative cancellation.

    Obtained from :meth:`repro.api.session.PreparedQuery.stream` (or
    ``QuerySession.stream``).  Iterating pulls events lazily — the underlying
    plan only does work when the next event is requested.  The terminal
    :class:`Completed` event's result is captured in :attr:`result`, and
    :meth:`drain` consumes the whole stream and returns it, which is exactly
    how blocking execution is implemented.
    """

    def __init__(
        self, events: Iterator[ExecutionEvent], control: ExecutionControl
    ) -> None:
        self._events = events
        self.control = control
        self._result: QueryResult | None = None
        self._stop_reason: str | None = None
        self._finished = False

    def __iter__(self) -> ExecutionStream:
        return self

    def __next__(self) -> ExecutionEvent:
        event = next(self._events)
        if isinstance(event, Completed):
            self._result = event.result
            self._stop_reason = event.stop_reason
            self._finished = True
        return event

    # -- control -------------------------------------------------------------------

    def cancel(self) -> None:
        """Request cancellation; the next batch boundary finalises a partial result."""
        self.control.cancel()

    def close(self) -> None:
        """Dispose of the underlying generator without finishing the execution."""
        closer = getattr(self._events, "close", None)
        if closer is not None:
            closer()
        self._finished = True

    # -- consumption helpers -------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the terminal event has been seen (or the stream was closed)."""
        return self._finished

    @property
    def result(self) -> QueryResult | None:
        """The terminal result, once :class:`Completed` has been consumed."""
        return self._result

    @property
    def stop_reason(self) -> str | None:
        """Why execution stopped early, or ``None`` for a natural completion."""
        return self._stop_reason

    def drain(self) -> QueryResult:
        """Consume every remaining event and return the terminal result.

        This is the definition of blocking execution: ``prepared.execute()``
        is exactly ``prepared.stream().drain()``, so streamed and blocking
        results are identical by construction.
        """
        for _ in self:
            pass
        if self._result is None:
            raise ExecutionError(
                "execution stream finished without a Completed event"
            )
        return self._result

    def until(
        self, predicate: Callable[[ExecutionEvent], bool]
    ) -> list[ExecutionEvent]:
        """Consume events until ``predicate`` matches one, then cancel and drain.

        Returns every event consumed, including the matching one and the
        terminal :class:`Completed` produced by the cancellation.  This is the
        ``stop_when`` escape hatch for conditions the typed
        :class:`StopConditions` cannot express.
        """
        consumed: list[ExecutionEvent] = []
        for event in self:
            consumed.append(event)
            if isinstance(event, Completed):
                return consumed
            if predicate(event):
                self.cancel()
                break
        for event in self:
            consumed.append(event)
        return consumed


def timed_stream(
    events: Iterator[ExecutionEvent],
) -> Iterator[ExecutionEvent]:
    """Wrap a plan's event stream with per-execution ledger bookkeeping.

    Counts emitted events/batches and stamps wall-clock time onto the
    :class:`~repro.metrics.runtime.ExecutionLedger` of the terminal result.
    Used by :meth:`repro.optimizer.base.PhysicalPlan.run`, so both streamed
    and drained executions carry the same accounting.
    """
    # Wall-clock stamping feeds ledger.wall_seconds, which is excluded from
    # result fingerprints — the one sanctioned clock read in engine code.
    started = time.perf_counter()  # repro: allow[RPR001]: ledger wall-clock stamping
    emitted = 0
    for event in events:
        emitted += 1
        if isinstance(event, Completed):
            event.result.stop_reason = event.stop_reason
            ledger = event.result.ledger
            if isinstance(ledger, ExecutionLedger):
                # Counter stores and the detection-cache release happen
                # under the ledger lock in one sanctioned method: the
                # ledger may already be visible to other threads.
                elapsed = time.perf_counter() - started  # repro: allow[RPR001]: ledger wall-clock stamping
                ledger.finalize_stream_accounting(
                    events_emitted=emitted,
                    batches_emitted=emitted - 1,
                    wall_seconds=elapsed,
                )
        yield event
