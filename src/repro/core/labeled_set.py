"""The labeled set: detector output over the training and held-out days.

Section 2: "we assume that a small representative sample of the video is
annotated with an object detector: this data is used as training data for
filters and specialized NNs ... This labeled set can be constructed once,
offline, and shared for multiple queries later."  The paper uses one day of
video for training labels and one day for threshold computation; the
reproduction mirrors that with the ``train`` and ``heldout`` splits of a
scenario.

Building the labeled set is an offline step whose cost is *not* charged to
query ledgers (matching the paper's measurement methodology); what *is*
charged per query is specialized-NN training on top of the labeled set, when
``include_training_time`` is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.core.recorded import RecordedDetections
from repro.detection.base import ObjectDetector
from repro.video.synthetic import SyntheticVideo


class LabeledSet:
    """Features and detector labels for the training and held-out days."""

    def __init__(
        self,
        train_video: SyntheticVideo,
        heldout_video: SyntheticVideo,
        train_recorded: RecordedDetections,
        heldout_recorded: RecordedDetections,
    ) -> None:
        self.train_video = train_video
        self.heldout_video = heldout_video
        self.train_recorded = train_recorded
        self.heldout_recorded = heldout_recorded
        self._train_features: np.ndarray | None = None
        self._heldout_features: np.ndarray | None = None

    @classmethod
    def build(
        cls,
        train_video: SyntheticVideo,
        heldout_video: SyntheticVideo,
        detector: ObjectDetector,
    ) -> "LabeledSet":
        """Run the detector over both days and assemble the labeled set."""
        return cls(
            train_video=train_video,
            heldout_video=heldout_video,
            train_recorded=RecordedDetections.build(train_video, detector),
            heldout_recorded=RecordedDetections.build(heldout_video, detector),
        )

    # -- features ----------------------------------------------------------------

    @property
    def train_features(self) -> np.ndarray:
        """Cheap per-frame features of the training day (computed lazily)."""
        if self._train_features is None:
            self._train_features = self.train_video.frame_features(
                np.arange(self.train_video.num_frames)
            )
        return self._train_features

    @property
    def heldout_features(self) -> np.ndarray:
        """Cheap per-frame features of the held-out day (computed lazily)."""
        if self._heldout_features is None:
            self._heldout_features = self.heldout_video.frame_features(
                np.arange(self.heldout_video.num_frames)
            )
        return self._heldout_features

    # -- labels ------------------------------------------------------------------

    def train_counts(self, object_class: str) -> np.ndarray:
        """Per-frame detector counts of one class on the training day."""
        return self.train_recorded.counts(object_class)

    def heldout_counts(self, object_class: str) -> np.ndarray:
        """Per-frame detector counts of one class on the held-out day."""
        return self.heldout_recorded.counts(object_class)

    def train_presence(self, object_class: str) -> np.ndarray:
        """Boolean per-frame presence of one class on the training day."""
        return self.train_recorded.presence(object_class)

    def heldout_presence(self, object_class: str) -> np.ndarray:
        """Boolean per-frame presence of one class on the held-out day."""
        return self.heldout_recorded.presence(object_class)

    def training_positives(self, object_class: str) -> int:
        """Number of training-day frames containing at least one instance."""
        return int(self.train_presence(object_class).sum())

    def training_instances(self, min_counts: dict[str, int]) -> int:
        """Number of training-day frames satisfying a count conjunction."""
        return int(self.train_recorded.frames_satisfying(min_counts).size)
