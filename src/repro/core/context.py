"""Execution context shared by physical plans.

The context bundles everything a plan needs to run a query over the unseen
("test day") video: the video itself, the labeled set, the configured
detector, an optional recording of the detector's output over the test day
(see :class:`~repro.core.recorded.RecordedDetections`), the UDF registry, the
engine configuration and a seeded random generator.

A context is built per video but may serve many queries: a
:class:`~repro.api.session.QuerySession` caches one context per video so
expensive per-video state (the cheap-feature matrix) is shared, and rebinds
the RNG stream per execution via :meth:`ExecutionContext.bind_rng` so
repeated approximate queries draw independent samples.

It also centralises detector access so every plan charges detection cost the
same way, whether the output comes from a live detector call or from the
recording.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import BlazeItConfig
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.detection.base import (
    DetectionResult,
    ObjectDetector,
    resolve_detection_batch,
)
from repro.metrics.runtime import ExecutionLedger, OperatorCost, RuntimeLedger
from repro.udf.registry import UDFRegistry
from repro.video.synthetic import SyntheticVideo

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a runtime cycle)
    from repro.index.view import IndexView
    from repro.obs.trace import Tracer
    from repro.parallel.cache import SharedDetectionCache
    from repro.parallel.executor import DetectionPrefetcher
    from repro.video.synthetic import Track, VideoSpec


@dataclass(frozen=True)
class ContextSpec:
    """Picklable recipe for rebuilding a shard worker's detection context.

    Process shard workers cannot share the driver's :class:`ExecutionContext`
    (it holds threads' worth of unpicklable, driver-only state); instead they
    receive this spec and rebuild exactly what speculative detection needs —
    the video, reconstructed bit-for-bit from its spec and track list, and
    the detector, whose output is deterministic per (detector seed, video
    seed, frame index).  Everything else (ledger, caches, RNG streams,
    recording) stays on the driver, which charges on consumption.
    """

    video_spec: "VideoSpec"
    tracks: "tuple[Track, ...]"
    detector: ObjectDetector

    def build_video(self) -> SyntheticVideo:
        """Rebuild the exact video (works for sliced videos too)."""
        return SyntheticVideo(self.video_spec, list(self.tracks))


@dataclass
class ExecutionContext:
    """Everything a physical plan needs to execute one query."""

    video: SyntheticVideo
    detector: ObjectDetector
    udf_registry: UDFRegistry
    config: BlazeItConfig
    labeled_set: LabeledSet | None = None
    recorded: RecordedDetections | None = None
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    #: Seed sequence this context's RNG stream was spawned from; the parallel
    #: engine spawns one child per shard from it (keyed by shard id), so
    #: shard-local randomness is reproducible and independent.
    seed_sequence: np.random.SeedSequence | None = field(default=None, repr=False)
    #: Process-wide cross-query detection cache (``None`` when disabled):
    #: consulted before the detector is called and before any charge is made.
    shared_cache: "SharedDetectionCache | None" = field(default=None, repr=False)
    #: Namespace of this context's frames in the shared cache (video name
    #: plus detector identity, built by the engine).
    cache_key: str = ""
    #: Persistent-index view for this video (``None`` when no committed index
    #: matches the cache key): serves exact persisted detector output — and
    #: sketch-proven skips — before any detector charge.
    index_view: "IndexView | None" = field(default=None, repr=False)
    #: Span tracer for this execution (``None`` — the default — disables
    #: tracing at true zero overhead; see :mod:`repro.obs.trace`).  Sessions
    #: attach a fresh tracer per traced execution on a private context copy;
    #: shard workers never receive it — their spans ship back over the
    #: executor transport and are stitched in driver-side.
    tracer: "Tracer | None" = field(default=None, repr=False)
    _features_cache: np.ndarray | None = field(default=None, repr=False)
    _prefetcher: "DetectionPrefetcher | None" = field(default=None, repr=False)

    def bind_rng(self, rng: np.random.Generator) -> ExecutionContext:
        """Attach the RNG stream for the next execution and return ``self``.

        Sessions call this before every plan execution so each run of a
        (possibly shared) context samples from its own stream.
        """
        self.rng = rng
        return self

    # -- parallel execution hooks ------------------------------------------------------

    def execution_clone(
        self,
        rng: np.random.Generator,
        seed_sequence: np.random.SeedSequence | None = None,
    ) -> ExecutionContext:
        """A private copy of this context for one (parallel) execution.

        Shares every per-video asset — video, detector, recording, labeled
        set, shared cache and the feature matrix if already computed — but
        owns its RNG binding, so a parallel execution can never contaminate
        the session's cached context while its stream is live.
        """
        return dataclasses.replace(
            self, rng=rng, seed_sequence=seed_sequence, _prefetcher=None
        )

    def shard_context(self, rng: np.random.Generator) -> ExecutionContext:
        """The context one shard worker computes detections in.

        Workers share the read-only assets (video, detector, recording,
        shared cache) but never the driver's RNG, prefetcher or feature
        cache; their detection work is uncharged — the driver charges on
        consumption.
        """
        return dataclasses.replace(
            self,
            rng=rng,
            seed_sequence=None,
            tracer=None,
            _prefetcher=None,
            _features_cache=None,
        )

    def with_prefetcher(self, prefetcher: "DetectionPrefetcher") -> ExecutionContext:
        """Attach a detection prefetcher (driver side of parallel execution)."""
        self._prefetcher = prefetcher
        return self

    def spawn_spec(self) -> ContextSpec:
        """Export the picklable :class:`ContextSpec` for process shard workers.

        Raises :class:`~repro.errors.SpawnExportError` when the context
        cannot cross a process boundary: a recording replaces the detector as
        the source of truth and lives only on the driver, and a detector that
        will not pickle cannot be rebuilt in a worker.  Routing treats the
        error as "use threads instead".
        """
        import pickle

        from repro.errors import SpawnExportError

        if self.recorded is not None:
            raise SpawnExportError(
                "context replays a recorded test day; recordings are "
                "driver-only, so process workers cannot reproduce them"
            )
        try:
            pickle.dumps(self.detector)
        except Exception as exc:
            raise SpawnExportError(
                f"detector {self.detector.name!r} is not picklable: {exc}"
            ) from exc
        return ContextSpec(
            video_spec=self.video.spec,
            tracks=tuple(self.video.tracks),
            detector=self.detector,
        )

    def announce_access_plan(
        self, frame_order: np.ndarray, monotone: bool = False
    ) -> None:
        """Declare the frame order this execution is about to verify.

        A no-op on sequential executions; under parallel execution this is
        the signal that starts the shard workers prefetching (see
        :meth:`repro.parallel.executor.DetectionPrefetcher.announce`).
        Plans call it exactly when their candidate order becomes known — a
        scan range, a sampling permutation, an importance ranking.
        """
        if self._prefetcher is not None:
            self._prefetcher.announce(frame_order, monotone=monotone)

    # -- detector access -----------------------------------------------------------

    def detect(
        self,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
        cost_scale: float = 1.0,
    ) -> DetectionResult:
        """Run (or replay) object detection on one test-day frame.

        ``cost_scale`` reduces the charged cost when a spatial filter has
        cropped the frame.  When ``ledger`` is an
        :class:`~repro.metrics.runtime.ExecutionLedger`, detections computed
        earlier in the same execution are served from its per-frame cache
        without re-calling (or re-charging) the detector; frames present in
        the process-wide shared cache are likewise served — and seeded into
        the execution cache — without any charge.
        """
        execution_ledger = ledger if isinstance(ledger, ExecutionLedger) else None
        if execution_ledger is not None:
            cached = execution_ledger.cached_detection(frame_index)
            if cached is not None:
                execution_ledger.record_cache_hit()
                return cached
        if self.shared_cache is not None:
            shared = self.shared_cache.get(self.cache_key, frame_index)
            if shared is not None:
                if execution_ledger is not None:
                    execution_ledger.stash_detection(frame_index, shared)
                    execution_ledger.record_cache_hit()
                return shared
        if self.index_view is not None:
            indexed = self.index_view.get(frame_index)
            if indexed is not None:
                result, skipped = indexed
                if execution_ledger is not None:
                    execution_ledger.stash_index_detection(
                        frame_index, result, skipped
                    )
                    execution_ledger.record_cache_hit()
                return result
        if ledger is not None:
            ledger.charge(self._scaled_cost(cost_scale))
        result = self._compute_detection(frame_index)
        if execution_ledger is not None:
            execution_ledger.record_detection(frame_index, result)
        if self.shared_cache is not None:
            self.shared_cache.put(self.cache_key, frame_index, result)
        return result

    def detect_batch(
        self,
        frame_indices: np.ndarray | list[int],
        ledger: RuntimeLedger | None = None,
        cost_scale: float = 1.0,
    ) -> list[DetectionResult]:
        """Run (or replay) detection on a batch of frames, charging once.

        The batched counterpart of :meth:`detect`, with identical results and
        identical per-frame accounting: the indices are partitioned into
        cache hits (served from the :class:`ExecutionLedger` detection cache
        and counted as hits), shared-cache hits (seeded into the execution
        cache free of charge) and misses; the misses are computed in one
        vectorized :meth:`~repro.detection.base.ObjectDetector.detect_many`
        call (or read from the recording, or taken from the parallel
        prefetch pipeline), and the ledger is charged with a single
        ``charge(cost, count=misses)``.  Repeated frames within the batch
        are computed once; under an execution ledger the repeats are
        accounted as cache hits, exactly as a sequential ``detect`` loop
        would (the shared semantics live in
        :func:`~repro.detection.base.resolve_detection_batch`).  With
        ``config.batched_execution`` disabled this falls back to that
        sequential scalar loop.
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        if not self.config.batched_execution:
            return [
                self.detect(int(i), ledger, cost_scale=cost_scale) for i in indices
            ]
        execution_ledger = ledger if isinstance(ledger, ExecutionLedger) else None
        if execution_ledger is not None and self.shared_cache is not None:
            self._seed_shared_hits(indices, execution_ledger)
        if execution_ledger is not None and self.index_view is not None:
            self._seed_index_hits(indices, execution_ledger)

        def compute_misses(miss_frames: list[int]) -> list[DetectionResult]:
            shared: dict[int, DetectionResult] = {}
            if execution_ledger is None and self.shared_cache is not None:
                # With no execution ledger there is no per-execution cache to
                # seed, so shared hits are resolved (uncharged) right here.
                shared = self.shared_cache.get_many(self.cache_key, miss_frames)
            if execution_ledger is None and self.index_view is not None:
                for frame_index in miss_frames:
                    if frame_index in shared:
                        continue
                    indexed = self.index_view.get(frame_index)
                    if indexed is not None:
                        shared[frame_index] = indexed[0]
            charged = [f for f in miss_frames if f not in shared]
            if ledger is not None:
                ledger.charge(self._scaled_cost(cost_scale), len(charged))
            computed = dict(zip(charged, self._compute_batch(charged), strict=True))
            if self.shared_cache is not None and computed:
                self.shared_cache.put_many(self.cache_key, computed)
            computed.update(shared)
            return [computed[f] for f in miss_frames]

        return resolve_detection_batch(indices, execution_ledger, compute_misses)

    def _seed_shared_hits(
        self, indices: np.ndarray, execution_ledger: ExecutionLedger
    ) -> None:
        """Stash shared-cache hits into the execution cache before resolving.

        The resolver then serves them as ordinary (free) cache hits, keeping
        the scalar and batched accounting identical.
        """
        assert self.shared_cache is not None
        unseen = [
            int(f)
            for f in dict.fromkeys(int(i) for i in indices)
            if execution_ledger.cached_detection(int(f)) is None
        ]
        if not unseen:
            return
        for frame_index, result in self.shared_cache.get_many(
            self.cache_key, unseen
        ).items():
            execution_ledger.stash_detection(frame_index, result)

    def _seed_index_hits(
        self, indices: np.ndarray, execution_ledger: ExecutionLedger
    ) -> None:
        """Stash index-served detections into the execution cache.

        The index tier of :meth:`detect_batch`: frames still unseen after the
        shared-cache seeding are served from the persistent index — decoded
        from the memory-mapped segment, or synthesized when the range sketch
        proves the range empty — and the resolver then counts them as free
        cache hits, exactly like the scalar :meth:`detect` path.
        """
        assert self.index_view is not None
        for frame_index in dict.fromkeys(int(i) for i in indices):
            if execution_ledger.cached_detection(frame_index) is not None:
                continue
            indexed = self.index_view.get(frame_index)
            if indexed is not None:
                result, skipped = indexed
                execution_ledger.stash_index_detection(frame_index, result, skipped)

    def _compute_detection(self, frame_index: int) -> DetectionResult:
        """Produce one frame's detections: prefetch, recording, or detector."""
        if self._prefetcher is not None:
            prefetched = self._prefetcher.take(frame_index)
            if prefetched is not None:
                return prefetched
        if self.recorded is not None:
            return self.recorded.result(frame_index)
        return self.detector.detect(self.video, frame_index)

    def _compute_batch(self, miss_frames: list[int]) -> list[DetectionResult]:
        """Batch counterpart of :meth:`_compute_detection` (same sources)."""
        if not miss_frames:
            return []
        prefetched: dict[int, DetectionResult] = {}
        if self._prefetcher is not None:
            prefetched = self._prefetcher.take_many(miss_frames)
        remaining = [f for f in miss_frames if f not in prefetched]
        if remaining:
            if self.recorded is not None:
                computed = {f: self.recorded.result(f) for f in remaining}
            else:
                computed = dict(
                    zip(remaining, self.detector.detect_many(self.video, remaining), strict=True)
                )
            prefetched.update(computed)
        return [prefetched[f] for f in miss_frames]

    def _scaled_cost(self, cost_scale: float) -> OperatorCost:
        """The detector's per-call cost, reduced by a spatial-crop scale."""
        cost = self.detector.cost
        if cost_scale == 1.0:
            return cost
        return OperatorCost(
            name=cost.name, seconds_per_call=cost.seconds_per_call * cost_scale
        )

    def detect_counts(
        self,
        frame_indices: np.ndarray,
        object_class: str,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Detected counts of one class at the given frames, charging per call.

        Scalar reference loop; the plans use :meth:`detect_counts_batch`.
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        counts = np.empty(indices.shape[0], dtype=np.float64)
        for row, frame_index in enumerate(indices):
            result = self.detect(int(frame_index), ledger)
            counts[row] = result.count(object_class)
        return counts

    def detect_counts_batch(
        self,
        frame_indices: np.ndarray,
        object_class: str,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Detected counts of one class over a batch, via :meth:`detect_batch`.

        With a persistent index attached, frames whose covering sketch range
        provably contains zero instances of ``object_class`` are answered
        ``0.0`` directly — no segment decode, no detector call (invariant I7:
        the sketch is exact, so the skip cannot change the count).  Frames
        already in the execution cache keep their normal cache-hit accounting
        by routing through :meth:`detect_batch`.
        """
        if self.index_view is None:
            results = self.detect_batch(frame_indices, ledger)
            return np.array(
                [result.count(object_class) for result in results], dtype=np.float64
            )
        indices = np.asarray(frame_indices, dtype=np.int64)
        execution_ledger = ledger if isinstance(ledger, ExecutionLedger) else None
        counts = np.zeros(indices.shape[0], dtype=np.float64)
        needed_rows: list[int] = []
        needed_frames: list[int] = []
        skipped = 0
        for row, frame_index in enumerate(indices):
            frame = int(frame_index)
            already_cached = (
                execution_ledger is not None
                and execution_ledger.cached_detection(frame) is not None
            )
            if not already_cached and self.index_view.class_count_zero(
                frame, object_class
            ):
                skipped += 1
                continue
            needed_rows.append(row)
            needed_frames.append(frame)
        if skipped and execution_ledger is not None:
            execution_ledger.record_index_skip(skipped)
        if needed_frames:
            results = self.detect_batch(
                np.asarray(needed_frames, dtype=np.int64), ledger
            )
            for row, result in zip(needed_rows, results, strict=True):
                counts[row] = result.count(object_class)
        return counts

    def satisfies_min_counts(
        self,
        frame_index: int,
        min_counts: dict[str, int],
        ledger: RuntimeLedger | None = None,
    ) -> bool:
        """Whether one frame satisfies a count conjunction, charging one call.

        With a persistent index attached, a frame whose sketch range proves
        the conjunction unsatisfiable (some class's per-frame maximum in the
        range is below its minimum) is rejected without any decode or charge.
        """
        if self.index_view is not None:
            execution_ledger = (
                ledger if isinstance(ledger, ExecutionLedger) else None
            )
            already_cached = (
                execution_ledger is not None
                and execution_ledger.cached_detection(frame_index) is not None
            )
            if not already_cached and self.index_view.fails_min_counts(
                frame_index, min_counts
            ):
                if execution_ledger is not None:
                    execution_ledger.record_index_skip()
                return False
        result = self.detect(frame_index, ledger)
        return all(
            result.count(object_class) >= min_count
            for object_class, min_count in min_counts.items()
        )

    # -- cheap features ---------------------------------------------------------------

    def test_features(self, frame_indices: np.ndarray | None = None) -> np.ndarray:
        """Cheap per-frame features of the test day.

        The full-feature matrix is cached because several plans (specialized
        rewriting, control variates, scrubbing) all need it.  Feature
        extraction cost is folded into the specialized-NN inference cost, so
        no separate charge is made here.
        """
        if frame_indices is not None:
            return self.video.frame_features(np.asarray(frame_indices, dtype=np.int64))
        if self._features_cache is None:
            self._features_cache = self.video.frame_features(
                np.arange(self.video.num_frames)
            )
        return self._features_cache

    # -- labeled-set conveniences ---------------------------------------------------------

    def require_labeled_set(self) -> LabeledSet:
        """The labeled set, raising a clear error when it was never built."""
        if self.labeled_set is None:
            raise RuntimeError(
                "this query plan needs a labeled set; call "
                "BlazeIt.build_labeled_set() (or register the video with "
                "train/heldout splits) first"
            )
        return self.labeled_set
