"""Execution context shared by physical plans.

The context bundles everything a plan needs to run a query over the unseen
("test day") video: the video itself, the labeled set, the configured
detector, an optional recording of the detector's output over the test day
(see :class:`~repro.core.recorded.RecordedDetections`), the UDF registry, the
engine configuration and a seeded random generator.

A context is built per video but may serve many queries: a
:class:`~repro.api.session.QuerySession` caches one context per video so
expensive per-video state (the cheap-feature matrix) is shared, and rebinds
the RNG stream per execution via :meth:`ExecutionContext.bind_rng` so
repeated approximate queries draw independent samples.

It also centralises detector access so every plan charges detection cost the
same way, whether the output comes from a live detector call or from the
recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BlazeItConfig
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.detection.base import (
    DetectionResult,
    ObjectDetector,
    resolve_detection_batch,
)
from repro.metrics.runtime import ExecutionLedger, OperatorCost, RuntimeLedger
from repro.udf.registry import UDFRegistry
from repro.video.synthetic import SyntheticVideo


@dataclass
class ExecutionContext:
    """Everything a physical plan needs to execute one query."""

    video: SyntheticVideo
    detector: ObjectDetector
    udf_registry: UDFRegistry
    config: BlazeItConfig
    labeled_set: LabeledSet | None = None
    recorded: RecordedDetections | None = None
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )
    _features_cache: np.ndarray | None = field(default=None, repr=False)

    def bind_rng(self, rng: np.random.Generator) -> ExecutionContext:
        """Attach the RNG stream for the next execution and return ``self``.

        Sessions call this before every plan execution so each run of a
        (possibly shared) context samples from its own stream.
        """
        self.rng = rng
        return self

    # -- detector access -----------------------------------------------------------

    def detect(
        self,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
        cost_scale: float = 1.0,
    ) -> DetectionResult:
        """Run (or replay) object detection on one test-day frame.

        ``cost_scale`` reduces the charged cost when a spatial filter has
        cropped the frame.  When ``ledger`` is an
        :class:`~repro.metrics.runtime.ExecutionLedger`, detections computed
        earlier in the same execution are served from its per-frame cache
        without re-calling (or re-charging) the detector.
        """
        execution_ledger = ledger if isinstance(ledger, ExecutionLedger) else None
        if execution_ledger is not None:
            cached = execution_ledger.cached_detection(frame_index)
            if cached is not None:
                execution_ledger.record_cache_hit()
                return cached
        if ledger is not None:
            ledger.charge(self._scaled_cost(cost_scale))
        if self.recorded is not None:
            result = self.recorded.result(frame_index)
        else:
            result = self.detector.detect(self.video, frame_index)
        if execution_ledger is not None:
            execution_ledger.record_detection(frame_index, result)
        return result

    def detect_batch(
        self,
        frame_indices: np.ndarray | list[int],
        ledger: RuntimeLedger | None = None,
        cost_scale: float = 1.0,
    ) -> list[DetectionResult]:
        """Run (or replay) detection on a batch of frames, charging once.

        The batched counterpart of :meth:`detect`, with identical results and
        identical per-frame accounting: the indices are partitioned into
        cache hits (served from the :class:`ExecutionLedger` detection cache
        and counted as hits) and misses, the misses are computed in one
        vectorized :meth:`~repro.detection.base.ObjectDetector.detect_many`
        call (or read from the recording), and the ledger is charged with a
        single ``charge(cost, count=misses)``.  Repeated frames within the
        batch are computed once; under an execution ledger the repeats are
        accounted as cache hits, exactly as a sequential ``detect`` loop
        would (the shared semantics live in
        :func:`~repro.detection.base.resolve_detection_batch`).  With
        ``config.batched_execution`` disabled this falls back to that
        sequential scalar loop.
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        if not self.config.batched_execution:
            return [
                self.detect(int(i), ledger, cost_scale=cost_scale) for i in indices
            ]
        execution_ledger = ledger if isinstance(ledger, ExecutionLedger) else None

        def compute_misses(miss_frames: list[int]) -> list[DetectionResult]:
            if ledger is not None:
                ledger.charge(self._scaled_cost(cost_scale), len(miss_frames))
            if self.recorded is not None:
                return [self.recorded.result(i) for i in miss_frames]
            return self.detector.detect_many(self.video, miss_frames)

        return resolve_detection_batch(indices, execution_ledger, compute_misses)

    def _scaled_cost(self, cost_scale: float) -> OperatorCost:
        """The detector's per-call cost, reduced by a spatial-crop scale."""
        cost = self.detector.cost
        if cost_scale == 1.0:
            return cost
        return OperatorCost(
            name=cost.name, seconds_per_call=cost.seconds_per_call * cost_scale
        )

    def detect_counts(
        self,
        frame_indices: np.ndarray,
        object_class: str,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Detected counts of one class at the given frames, charging per call.

        Scalar reference loop; the plans use :meth:`detect_counts_batch`.
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        counts = np.empty(indices.shape[0], dtype=np.float64)
        for row, frame_index in enumerate(indices):
            result = self.detect(int(frame_index), ledger)
            counts[row] = result.count(object_class)
        return counts

    def detect_counts_batch(
        self,
        frame_indices: np.ndarray,
        object_class: str,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Detected counts of one class over a batch, via :meth:`detect_batch`."""
        results = self.detect_batch(frame_indices, ledger)
        return np.array(
            [result.count(object_class) for result in results], dtype=np.float64
        )

    def satisfies_min_counts(
        self,
        frame_index: int,
        min_counts: dict[str, int],
        ledger: RuntimeLedger | None = None,
    ) -> bool:
        """Whether one frame satisfies a count conjunction, charging one call."""
        result = self.detect(frame_index, ledger)
        return all(
            result.count(object_class) >= min_count
            for object_class, min_count in min_counts.items()
        )

    # -- cheap features ---------------------------------------------------------------

    def test_features(self, frame_indices: np.ndarray | None = None) -> np.ndarray:
        """Cheap per-frame features of the test day.

        The full-feature matrix is cached because several plans (specialized
        rewriting, control variates, scrubbing) all need it.  Feature
        extraction cost is folded into the specialized-NN inference cost, so
        no separate charge is made here.
        """
        if frame_indices is not None:
            return self.video.frame_features(np.asarray(frame_indices, dtype=np.int64))
        if self._features_cache is None:
            self._features_cache = self.video.frame_features(
                np.arange(self.video.num_frames)
            )
        return self._features_cache

    # -- labeled-set conveniences ---------------------------------------------------------

    def require_labeled_set(self) -> LabeledSet:
        """The labeled set, raising a clear error when it was never built."""
        if self.labeled_set is None:
            raise RuntimeError(
                "this query plan needs a labeled set; call "
                "BlazeIt.build_labeled_set() (or register the video with "
                "train/heldout splits) first"
            )
        return self.labeled_set
