"""Engine configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.specialization.trainer import TrainingConfig


class AggregateMethod(enum.Enum):
    """Execution strategy for aggregate queries.

    ``AUTO`` follows Algorithm 1 of the paper: rewrite with the specialized NN
    when its held-out error satisfies the user's bound, otherwise fall back to
    control variates; when there is not enough training data, use plain AQP.
    The explicit values force a particular strategy (used by the benchmarks to
    produce the per-variant series of Figures 4 and 5).
    """

    AUTO = "auto"
    SPECIALIZED_REWRITE = "specialized_rewrite"
    CONTROL_VARIATES = "control_variates"
    NAIVE_AQP = "naive_aqp"
    EXACT = "exact"


@dataclass
class BlazeItConfig:
    """Configuration of a :class:`~repro.core.engine.BlazeIt` engine.

    Parameters
    ----------
    training:
        Hyper-parameters for specialized-model training.
    aggregate_method:
        Strategy override for aggregate queries (``AUTO`` by default).
    default_error_tolerance:
        Error bound used when an aggregate query carries no ``ERROR WITHIN``.
    default_confidence:
        Confidence used when no ``CONFIDENCE`` clause is present.
    min_training_positives:
        Minimum number of training-day frames containing the queried class
        before specialization is attempted; below this, aggregation falls back
        to plain AQP and scrubbing to an exhaustive scan.
    include_training_time:
        Whether specialized-NN training time is charged to the query ledger
        ("BlazeIt" vs "BlazeIt (no train)" in Figure 4).
    specialized_model_type:
        Architecture used for specialized models: ``"softmax"`` (a linear
        model; fast and stable even on very small labeled sets, the default)
        or ``"mlp"`` (a small non-linear network, the closest analogue of the
        paper's tiny ResNet; used by the benchmark harness, where the labeled
        sets are large enough to train it reliably).
    specialized_hidden_size:
        Hidden width of the MLP specialized models.
    batched_execution:
        Route detector access through the vectorized batch pipeline
        (``ExecutionContext.detect_batch``; the default).  When disabled,
        batch calls fall back to the scalar per-frame reference path —
        bit-for-bit identical results, used by the perf-regression bench and
        the scalar/batched equivalence tests.
    parallelism:
        Default worker count for the parallel sharded execution engine: every
        query streamed or executed through a session partitions its video
        into up to this many shards, each prefetched by its own worker
        thread (``QueryHints.parallelism`` overrides per query).  ``1`` — the
        default — runs the classic single-threaded path.  Results (ledger
        accounting included) are bit-for-bit identical at every setting
        under a fixed RNG stream.
    shared_cache_bytes:
        Byte budget of the process-wide shared detection cache consulted
        before the detector is called (and before the ledger is charged), so
        repeated queries over hot videos skip detector work entirely.  ``0``
        — the default — disables the cache, keeping every execution's
        accounting independent of history.
    tracing:
        Enable span tracing for every execution by default (the per-query
        ``QueryHints.trace`` and ``execute(analyze=True)`` override this).
        Spans record wall time for display only and never feed results, so
        enabling tracing cannot change any query answer.  ``False`` — the
        default — keeps the engine at true zero tracing overhead.
    seed:
        Seed for all randomised decisions made by the engine.
    """

    training: TrainingConfig = field(default_factory=TrainingConfig)
    aggregate_method: AggregateMethod = AggregateMethod.AUTO
    default_error_tolerance: float = 0.1
    default_confidence: float = 0.95
    min_training_positives: int = 100
    include_training_time: bool = True
    specialized_model_type: str = "softmax"
    specialized_hidden_size: int = 32
    batched_execution: bool = True
    parallelism: int = 1
    shared_cache_bytes: int = 0
    tracing: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.specialized_model_type not in ("softmax", "mlp"):
            raise ConfigurationError(
                "specialized_model_type must be 'softmax' or 'mlp', got "
                f"{self.specialized_model_type!r}"
            )
        if self.specialized_hidden_size < 1:
            raise ConfigurationError(
                f"specialized_hidden_size must be >= 1, got {self.specialized_hidden_size}"
            )
        if self.default_error_tolerance <= 0:
            raise ConfigurationError(
                f"default_error_tolerance must be positive, got "
                f"{self.default_error_tolerance}"
            )
        if not 0.0 < self.default_confidence < 1.0:
            raise ConfigurationError(
                f"default_confidence must be in (0, 1), got {self.default_confidence}"
            )
        if self.min_training_positives < 0:
            raise ConfigurationError(
                f"min_training_positives must be non-negative, got "
                f"{self.min_training_positives}"
            )
        if self.parallelism < 1:
            raise ConfigurationError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.shared_cache_bytes < 0:
            raise ConfigurationError(
                f"shared_cache_bytes must be non-negative, got "
                f"{self.shared_cache_bytes}"
            )
