"""BlazeIt core: the engine that optimizes and executes FrameQL queries."""

from repro.core.config import AggregateMethod, BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.core.results import (
    AggregateResult,
    ExactResult,
    QueryResult,
    ScrubbingQueryResult,
    SelectionResult,
)

__all__ = [
    "BlazeIt",
    "BlazeItConfig",
    "AggregateMethod",
    "LabeledSet",
    "RecordedDetections",
    "QueryResult",
    "AggregateResult",
    "ScrubbingQueryResult",
    "SelectionResult",
    "ExactResult",
]
