"""Re-keyed Philox streams for the vectorized batch kernels.

The scalar reference paths draw per-frame noise from fresh
``np.random.Generator(np.random.Philox(key=[hi, frame]))`` instances; at one
generator construction per frame that is the dominant cost of a batch kernel.
:class:`RekeyedPhilox` produces the exact same streams from a single bit
generator by resetting its state (key, counter, output buffer) in place —
bit-for-bit identical draws at roughly a quarter of the cost.

This is a dependency-free leaf module shared by the feature kernel
(:mod:`repro.video.synthetic`) and the simulated detector's batch path
(:mod:`repro.detection.simulated`); the state-dict surgery against numpy's
``BitGenerator.state`` property lives here and nowhere else.
"""

from __future__ import annotations

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF


class RekeyedPhilox:
    """One Philox bit generator serving many ``key=[key_hi, key_lo]`` streams.

    ``rekey(key_lo)`` returns a generator positioned at the very start of the
    stream a fresh ``Philox(key=[key_hi, key_lo])`` would produce; the
    returned generator is shared, so draws must finish before the next
    ``rekey`` call.
    """

    def __init__(self, key_hi: int) -> None:
        key_hi &= _MASK64
        self._bit_generator = np.random.Philox(key=[key_hi, 0])
        self._generator = np.random.Generator(self._bit_generator)
        # A reusable state template: zeroed counter, flushed output buffer.
        # Only the low key word changes between streams.
        self._key = np.array([key_hi, 0], dtype=np.uint64)
        self._template = self._bit_generator.state
        self._template["buffer_pos"] = 4
        self._template["has_uint32"] = 0
        self._template["uinteger"] = 0
        self._template["state"] = {
            "counter": np.zeros(4, dtype=np.uint64),
            "key": self._key,
        }

    def rekey(self, key_lo: int) -> np.random.Generator:
        """The shared generator, reset to the start of stream ``key_lo``."""
        self._key[1] = key_lo
        self._bit_generator.state = self._template
        return self._generator
