"""Project model: parsed modules, import resolution, class hierarchy.

Checkers never touch the filesystem — they see a :class:`ProjectModel`
built once per run.  The model is deliberately approximate (it is a
linter, not a compiler): names resolve through per-module import alias
maps, class bases resolve transitively across modules, and
:mod:`symtable` is used where binding questions matter (is ``random``
here the stdlib module or a local variable?).
"""

from __future__ import annotations

import ast
import symtable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.pragmas import parse_pragmas


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ModuleInfo:
    """One parsed source file plus lazily-built lookup structures."""

    name: str
    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    _symtable: symtable.SymbolTable | None = field(default=None, repr=False)
    _scopes: dict[tuple[str, int], symtable.SymbolTable] | None = field(
        default=None, repr=False
    )

    @property
    def package(self) -> str:
        return self.name.rsplit(".", 1)[0] if "." in self.name else self.name

    def symbol_table(self) -> symtable.SymbolTable:
        if self._symtable is None:
            self._symtable = symtable.symtable(self.source, str(self.path), "exec")
        return self._symtable

    def scope_for(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef
    ) -> symtable.SymbolTable | None:
        """The symtable scope matching an AST definition, if resolvable."""
        if self._scopes is None:
            scopes: dict[tuple[str, int], symtable.SymbolTable] = {}
            stack = [self.symbol_table()]
            while stack:
                table = stack.pop()
                scopes[(table.get_name(), table.get_lineno())] = table
                stack.extend(table.get_children())
            self._scopes = scopes
        return self._scopes.get((node.name, node.lineno))

    def resolve(self, name: str) -> str:
        """Resolve a possibly-dotted local name through the import map.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when the
        module has ``import numpy as np``.  Unresolvable names come back
        unchanged.
        """
        head, _, rest = name.partition(".")
        target = self.imports.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target


def _build_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    mapping: dict[str, str] = {}
    package_parts = module_name.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: climb from the *package* containing this
                # module (level 1 = current package).
                base_parts = package_parts[: -node.level]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{base}.{alias.name}" if base else alias.name
    return mapping


@dataclass
class ClassInfo:
    """A class definition with import-resolved base names."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    base_names: tuple[str, ...]

    @property
    def relpath(self) -> str:
        return self.module.relpath


@dataclass
class ProjectModel:
    """All modules of one package tree, indexed for cross-file questions."""

    root: Path
    package: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    classes_by_name: dict[str, list[ClassInfo]] = field(default_factory=dict)

    @classmethod
    def build(cls, root: Path, package: str | None = None) -> "ProjectModel":
        """Parse every ``*.py`` under ``root`` (a package directory)."""
        root = root.resolve()
        package = package or root.name
        model = cls(root=root, package=package)
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            parts = (package, *rel.with_suffix("").parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module_name = ".".join(parts)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            lines = source.splitlines()
            info = ModuleInfo(
                name=module_name,
                path=path,
                relpath=(Path(package) / rel).as_posix(),
                source=source,
                tree=tree,
                lines=lines,
                pragmas=parse_pragmas(lines),
            )
            info.imports = _build_imports(tree, module_name)
            model.modules[module_name] = info
        model._index_classes()
        return model

    def _index_classes(self) -> None:
        for info in self.modules.values():
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = []
                for base in node.bases:
                    name = dotted_name(base)
                    if name is None:
                        continue
                    resolved = info.resolve(name)
                    # A bare name defined in the same module is local.
                    if resolved == name and "." not in name:
                        resolved = f"{info.name}.{name}"
                    bases.append(resolved)
                cinfo = ClassInfo(
                    qualname=f"{info.name}.{node.name}",
                    name=node.name,
                    module=info,
                    node=node,
                    base_names=tuple(bases),
                )
                self.classes[cinfo.qualname] = cinfo
                self.classes_by_name.setdefault(node.name, []).append(cinfo)

    # -- hierarchy queries ---------------------------------------------------------

    def find_class(self, name: str) -> ClassInfo | None:
        """Look up by qualname, else by unique simple name."""
        if name in self.classes:
            return self.classes[name]
        candidates = self.classes_by_name.get(name.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return candidates[0]
        for candidate in candidates:
            if candidate.qualname.endswith("." + name):
                return candidate
        return None

    def is_subclass(self, cls: ClassInfo, ancestor: str) -> bool:
        """True when ``ancestor`` (simple or qualified name) is a base,
        transitively, of ``cls`` — or is ``cls`` itself."""
        target_simple = ancestor.rsplit(".", 1)[-1]
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if current.name == target_simple or current.qualname == ancestor:
                return True
            for base in current.base_names:
                if base.rsplit(".", 1)[-1] == target_simple:
                    return True
                resolved = self.find_class(base)
                if resolved is not None:
                    stack.append(resolved)
        return False

    def subclasses_of(self, ancestor: str) -> list[ClassInfo]:
        """Every project class transitively deriving from ``ancestor``
        (excluding the ancestor class itself)."""
        found = []
        for cinfo in self.classes.values():
            if cinfo.name == ancestor.rsplit(".", 1)[-1]:
                continue
            if self.is_subclass(cinfo, ancestor):
                found.append(cinfo)
        return found

    # -- cheap type inference ------------------------------------------------------

    def _annotation_class(
        self, info: ModuleInfo, annotation: ast.expr | None
    ) -> ClassInfo | None:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value
        else:
            name = dotted_name(annotation)
        if not name:
            return None
        resolved = info.resolve(name)
        return self.find_class(resolved) or self.find_class(name)

    def attribute_types(self, cinfo: ClassInfo) -> dict[str, ClassInfo]:
        """Types of ``self.X`` attributes, from ``__init__`` assignments of
        annotated parameters or direct project-class constructions."""
        result: dict[str, ClassInfo] = {}
        init = next(
            (
                stmt
                for stmt in cinfo.node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return result
        params: dict[str, ClassInfo] = {}
        for arg in [*init.args.posonlyargs, *init.args.args, *init.args.kwonlyargs]:
            target = self._annotation_class(cinfo.module, arg.annotation)
            if target is not None:
                params[arg.arg] = target
        for node in ast.walk(init):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in params:
                result[target.attr] = params[value.id]
            elif isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name:
                    found = self.find_class(cinfo.module.resolve(name))
                    if found is not None:
                        result[target.attr] = found
        return result

    def return_class(
        self, info: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> ClassInfo | None:
        """The project class a function's return annotation names, if any."""
        return self._annotation_class(info, func.returns)

    # -- iteration helpers ---------------------------------------------------------

    def iter_functions(
        self, info: ModuleInfo
    ) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.ClassDef | None]
    ]:
        """Yield ``(function_node, dotted_context, enclosing_class)``."""

        def visit(
            node: ast.AST, prefix: str, enclosing: ast.ClassDef | None
        ) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.ClassDef | None]
        ]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    context = f"{prefix}.{child.name}" if prefix else child.name
                    yield child, context, enclosing
                    yield from visit(child, context, enclosing)
                elif isinstance(child, ast.ClassDef):
                    context = f"{prefix}.{child.name}" if prefix else child.name
                    yield from visit(child, context, child)

        yield from visit(info.tree, info.name, None)


__all__ = ["ClassInfo", "ModuleInfo", "ProjectModel", "dotted_name"]
