"""Committed baseline of grandfathered findings.

The baseline is a JSON file at the repo root (``analysis-baseline.json``).
Each entry names one finding by its stable identity — rule, file,
enclosing scope, and message (not line number, so unrelated edits don't
invalidate it) — plus a one-line human justification.  CI fails on any
finding not in the baseline; ``--write-baseline`` regenerates the file
(preserving existing justifications) when a finding is deliberately
accepted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.persist import atomic_write_text

_PLACEHOLDER = "TODO: justify this grandfathered finding"


@dataclass
class Baseline:
    """Lookup table from finding identity to its justification."""

    entries: dict[tuple[str, str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries: dict[tuple[str, str, str, str], str] = {}
        for item in payload.get("findings", []):
            key = (
                str(item["rule"]),
                str(item["path"]),
                str(item.get("context", "")),
                str(item["message"]),
            )
            entries[key] = str(item.get("justification", _PLACEHOLDER))
        return cls(entries=entries)

    def contains(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.baseline_key in self.entries

    def write(self, path: Path, diagnostics: list[Diagnostic]) -> None:
        """Serialize ``diagnostics``, keeping justifications already on file."""
        findings = []
        for diag in sorted(diagnostics):
            rule, rel, context, message = diag.baseline_key
            findings.append(
                {
                    "rule": rule,
                    "path": rel,
                    "context": context,
                    "message": message,
                    "justification": self.entries.get(
                        diag.baseline_key, _PLACEHOLDER
                    ),
                }
            )
        payload = {
            "note": (
                "Grandfathered findings for `python -m repro.analysis`. "
                "Each entry needs a one-line justification; prefer fixing "
                "or pragma-ing new findings over extending this file."
            ),
            "findings": findings,
        }
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")

    def stale_entries(
        self, diagnostics: list[Diagnostic]
    ) -> list[tuple[str, str, str, str]]:
        """Baseline entries no longer produced by the analyzer."""
        live = {diag.baseline_key for diag in diagnostics}
        return [key for key in self.entries if key not in live]


__all__ = ["Baseline"]
