"""Static invariant analysis for the reproduction's source tree.

The runtime test suite proves the reproduction's contracts hold on the
inputs the tests happen to exercise; this package proves a class of
violations cannot be *written* without tripping CI.  It is a small,
self-contained framework on stdlib :mod:`ast` and :mod:`symtable` — no new
dependencies — with a pluggable checker architecture:

* :class:`~repro.analysis.checkers.base.Checker` subclasses implement one
  rule each over a :class:`~repro.analysis.project.ProjectModel` (parsed
  modules, import resolution, class hierarchy across ``src/repro``);
* findings are typed :class:`~repro.analysis.diagnostics.Diagnostic`
  objects (rule id, severity, file:line, fix hint);
* intentional violations are suppressed inline with a
  ``# repro: allow[RULE]: reason`` pragma, or grandfathered in the
  committed baseline file (``analysis-baseline.json``) with a one-line
  justification each;
* ``python -m repro.analysis`` runs the whole suite and gates CI on zero
  non-baselined findings.

Shipped rules (see ``docs/INVARIANTS.md`` for the invariant catalog):

========  =====================================================================
RPR001    determinism: no wall-clock or unseeded randomness in result-producing
          modules
RPR002    ledger accounting: detector access flows through ``ExecutionContext``
RPR003    lock discipline: thread-shared state mutated only under its lock;
          lock-acquisition-order graph is cycle-free
RPR004    async hygiene: no blocking calls on the event loop, no ``await``
          under a sync lock
RPR005    wire exhaustiveness: every event/result class has a registered codec
========  =====================================================================
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import all_checkers
from repro.analysis.diagnostics import Diagnostic, Severity, format_diagnostics
from repro.analysis.project import ClassInfo, ModuleInfo, ProjectModel
from repro.analysis.runner import AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Baseline",
    "ClassInfo",
    "Diagnostic",
    "ModuleInfo",
    "ProjectModel",
    "Severity",
    "all_checkers",
    "format_diagnostics",
    "run_analysis",
]
