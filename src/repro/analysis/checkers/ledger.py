"""RPR002 — ledger accounting: detector access flows through
``ExecutionContext``.

Every frame the reproduction "pays for" must be charged to the runtime
ledger, and the only sanctioned charging paths are
``ExecutionContext.detect`` / ``detect_batch`` / ``detect_counts*`` (plus
the detector implementations themselves).  A direct
``detector.detect(...)``, ``.detect_many(...)``, or ``._detect_batch(...)``
call anywhere else silently produces detections the cost model never
sees, which corrupts both the throughput numbers and the cross-path
result-identity guarantee.

Allowed sites:

* modules under ``<pkg>/core/`` and ``<pkg>/detection/`` (the charging
  machinery and the detector implementations);
* methods of ``ObjectDetector`` subclasses anywhere (a detector may call
  its own primitives, e.g. ``super()._detect_batch(...)``), resolved
  through the project class hierarchy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.checkers.base import Checker
from repro.analysis.project import ProjectModel, dotted_name

_DETECT_METHODS = {"detect_many", "_detect_batch"}
_DETECTOR_BASE = "ObjectDetector"


class LedgerAccountingChecker(Checker):
    rule = "RPR002"
    title = "detector invocations must flow through ExecutionContext"

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        pkg = project.package
        allowed_prefixes = (f"{pkg}/core/", f"{pkg}/detection/")
        for info in project.modules.values():
            if info.relpath.startswith(allowed_prefixes):
                continue
            for func, context, cls in project.iter_functions(info):
                if cls is not None:
                    cinfo = project.find_class(f"{info.name}.{cls.name}")
                    if cinfo is not None and project.is_subclass(
                        cinfo, _DETECTOR_BASE
                    ):
                        continue
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    if not isinstance(node.func, ast.Attribute):
                        continue
                    attr = node.func.attr
                    if attr in _DETECT_METHODS:
                        pass
                    elif attr == "detect":
                        # `.detect` is a common verb; only flag it on a
                        # receiver that is plainly a detector.
                        receiver = dotted_name(node.func.value) or ""
                        if "detector" not in receiver.lower():
                            continue
                    else:
                        continue
                    yield self.diagnostic(
                        info,
                        node.lineno,
                        node.col_offset,
                        f"direct detector call `.{attr}(...)` bypasses "
                        "ledger accounting",
                        context=context,
                        hint=(
                            "invoke the detector via ExecutionContext."
                            "detect/detect_batch so frames are charged to "
                            "the runtime ledger"
                        ),
                    )


__all__ = ["LedgerAccountingChecker"]
