"""RPR008 — observability hygiene: tracing stays out of results, spans close.

Two invariants keep the observability layer honest:

**A. Trace/metric values never flow into result-bearing code.**  Span wall
fields (``wall_start`` / ``wall_duration`` — deliberately distinctive names)
and the Prometheus rendering are display-only; reading them anywhere outside
the observability package and the service layer means wall-clock is one
assignment away from a query result.  Dict literals carrying the *keys* (the
worker span payloads in ``parallel/``) are fine — only attribute loads leak
values into expressions.

**B. Every opened span is closed on all exception paths.**  A span context
manager held in a variable (``s = tracer.span("x")``) is a leak waiting for
the first exception between acquisition and use.  Span-factory calls —
``*.span`` / ``*.operator_span`` / ``*.traced``, and the free functions
``maybe_span`` / ``operator_scope`` — must therefore appear either directly
as a ``with``-item context expression or as the sole expression of a
``return`` statement (the factory pattern: the *caller* puts the returned
context manager in a ``with``).

Deliberate exceptions carry an inline ``# repro: allow[RPR008]: reason``
pragma, handled by the runner like every other rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import ModuleInfo, ProjectModel, dotted_name

#: Span wall fields whose *values* must stay inside obs/ and service/.
_WALL_FIELDS = {"wall_start", "wall_duration"}

#: Methods that open a span (last dotted segment).
_SPAN_METHODS = {"span", "operator_span", "traced"}

#: Free functions that return a span context manager.
_SPAN_FUNCTIONS = {"maybe_span", "operator_scope"}


class ObservabilityHygieneChecker(Checker):
    rule = "RPR008"
    title = "trace values stay display-only; spans close on all paths"

    def _display_only_prefixes(self, project: ProjectModel) -> tuple[str, ...]:
        pkg = project.package
        return (f"{pkg}/obs/", f"{pkg}/service/")

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        prefixes = self._display_only_prefixes(project)
        for info in project.modules.values():
            display_ok = info.relpath.startswith(prefixes)
            yield from self._check_module(info, display_ok)

    # -- per-module walk -----------------------------------------------------------

    def _check_module(
        self, info: ModuleInfo, display_ok: bool
    ) -> Iterator[Diagnostic]:
        sanctioned = self._sanctioned_calls(info.tree)
        context_stack: list[str] = [info.name]

        def scan(node: ast.AST) -> Iterator[Diagnostic]:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                context_stack.append(f"{context_stack[-1]}.{node.name}")
                for child in ast.iter_child_nodes(node):
                    yield from scan(child)
                context_stack.pop()
                return
            if (
                not display_ok
                and isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in _WALL_FIELDS
            ):
                yield self.diagnostic(
                    info, node.lineno, node.col_offset,
                    f"span wall field `.{node.attr}` read outside the "
                    f"observability/service layers",
                    context=context_stack[-1],
                    hint=(
                        "span wall times are display-only; result-bearing "
                        "code must never read them (determinism contract)"
                    ),
                )
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    info, node, context_stack[-1], display_ok, sanctioned
                )
            for child in ast.iter_child_nodes(node):
                yield from scan(child)

        yield from scan(info.tree)

    def _check_call(
        self,
        info: ModuleInfo,
        node: ast.Call,
        context: str,
        display_ok: bool,
        sanctioned: set[ast.Call],
    ) -> Iterator[Diagnostic]:
        name = dotted_name(node.func)
        if name is None:
            return
        last = name.rsplit(".", 1)[-1]
        if not display_ok and last == "render_prometheus":
            yield self.diagnostic(
                info, node.lineno, node.col_offset,
                "`render_prometheus()` called outside the "
                "observability/service layers",
                context=context,
                hint=(
                    "the Prometheus exposition is a wire format for "
                    "scrapers; engine code must not consume it"
                ),
            )
            return
        is_method = "." in name and last in _SPAN_METHODS
        is_function = "." not in name and name in _SPAN_FUNCTIONS
        if (is_method or is_function) and node not in sanctioned:
            yield self.diagnostic(
                info, node.lineno, node.col_offset,
                f"span-opening call `{name}()` is neither a `with`-item "
                f"nor a returned factory value",
                context=context,
                hint=(
                    "open spans directly in a `with` statement (or return "
                    "the context manager from a factory) so exception "
                    "paths always close them"
                ),
            )

    @staticmethod
    def _sanctioned_calls(tree: ast.AST) -> set[ast.Call]:
        """Call nodes in positions that guarantee span closure.

        A call used *directly* as a ``with``-item context expression is
        closed by the ``with``; a call that is the sole expression of a
        ``return`` hands the unopened context manager to the caller (the
        span-factory pattern — ``PhysicalOperator.traced``, ``maybe_span``).
        """
        sanctioned: set[ast.Call] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        sanctioned.add(item.context_expr)
            elif isinstance(node, ast.Return):
                if isinstance(node.value, ast.Call):
                    sanctioned.add(node.value)
        return sanctioned


__all__ = ["ObservabilityHygieneChecker"]
