"""RPR006 — fork safety of objects shipped into multiprocessing workers.

Everything passed to a ``multiprocessing.Process`` (the ``target=``
callable and every element of ``args=`` / ``kwargs=``) is pickled into the
child under the spawn start method.  Objects that hold thread
synchronisation primitives (``threading.Lock`` and friends), thread-local
queues, live threads, open sockets or file handles, or plainly unpicklable
values (lambdas) either fail to pickle outright or — worse — pickle into a
*dead copy*: a lock the parent holds arrives released, a queue arrives
empty, a socket arrives closed.

The checker resolves, best effort, the class of every captured argument
(locally-constructed names, ``self``-attributes of the enclosing class,
bound-method targets) and flags any whose attributes are constructed from a
risky type.  ``multiprocessing`` primitives (``mp.Queue``, ``ctx.Event``)
are exempt by construction: they are designed to cross the boundary, and
their constructors never resolve to the ``threading``/``queue`` modules.
Plain-data specs — frozen dataclasses of arrays and value types, like the
process executor's ``ShardWorkerSpec`` — carry no risky constructions and
pass untouched.

Suppress a deliberate capture with ``# repro: allow[RPR006]: <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import (
    ClassInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)

#: Constructor types whose instances do not survive pickling into a worker
#: process, mapped to the phrase used in the diagnostic.
_RISKY_TYPES = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Event": "a threading.Event",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.BoundedSemaphore": "a threading.BoundedSemaphore",
    "threading.Thread": "a live thread",
    "threading.local": "thread-local storage",
    "queue.Queue": "a thread-local queue.Queue",
    "queue.SimpleQueue": "a thread-local queue.SimpleQueue",
    "queue.LifoQueue": "a thread-local queue.LifoQueue",
    "queue.PriorityQueue": "a thread-local queue.PriorityQueue",
    "socket.socket": "an open socket",
    "socket.create_connection": "an open socket",
    "open": "an open file handle",
    "io.open": "an open file handle",
}

#: Spellings of the process constructor (resolved through the module's
#: import map for plain names; matched on the attribute for context objects
#: like ``self._mp.Process`` whose type static resolution cannot see).
_PROCESS_CTORS = {"multiprocessing.Process", "multiprocessing.context.Process"}


def _value_risk(info: ModuleInfo, value: ast.expr | None) -> str | None:
    """Why a constructed attribute value is fork-unsafe, or ``None``.

    Resolves ``threading.Lock()``-style constructor calls (including
    ``field(default_factory=threading.Lock)``) through the import map, and
    treats lambdas as unpicklable outright.
    """
    if isinstance(value, ast.Lambda):
        return "an unpicklable lambda"
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    resolved = info.resolve(name)
    if resolved.rsplit(".", 1)[-1] == "field":
        for kw in value.keywords:
            if kw.arg == "default_factory":
                factory = dotted_name(kw.value)
                if factory is not None:
                    resolved = info.resolve(factory)
                    break
        else:
            return None
    return _RISKY_TYPES.get(resolved)


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


def _is_process_ctor(info: ModuleInfo, func: ast.expr) -> bool:
    name = dotted_name(func)
    if name is not None and info.resolve(name) in _PROCESS_CTORS:
        return True
    # Context objects (``mp_context.Process``, ``self._mp.Process``) defeat
    # import resolution; the trailing attribute is the tell.
    return isinstance(func, ast.Attribute) and func.attr == "Process"


class ForkSafetyChecker(Checker):
    rule = "RPR006"
    title = "objects shipped into multiprocessing workers must survive pickling"

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        risky = self._discover_risky(project)
        for info in project.modules.values():
            for func, context, cls in project.iter_functions(info):
                enclosing: ClassInfo | None = None
                if cls is not None:
                    enclosing = project.find_class(f"{info.name}.{cls.name}")
                yield from self._check_function(
                    project, risky, info, func, context, enclosing
                )

    # -- discovery -----------------------------------------------------------------

    def _discover_risky(
        self, project: ProjectModel
    ) -> dict[str, list[tuple[str, str]]]:
        """``qualname -> [(attr, why)]`` for classes holding fork-unsafe state,
        inherited attributes included."""
        direct: dict[str, list[tuple[str, str]]] = {}
        for cinfo in project.classes.values():
            found: list[tuple[str, str]] = []
            for stmt in ast.walk(cinfo.node):
                attr: str | None = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        attr = stmt.target.id
                    elif isinstance(stmt.target, ast.Attribute) and _is_self(
                        stmt.target.value
                    ):
                        attr = stmt.target.attr
                    value = stmt.value
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        attr = target.id
                    elif isinstance(target, ast.Attribute) and _is_self(
                        target.value
                    ):
                        attr = target.attr
                    value = stmt.value
                if attr is None:
                    continue
                why = _value_risk(cinfo.module, value)
                if why is not None:
                    found.append((attr, why))
            if found:
                direct[cinfo.qualname] = found

        # Inheritance closure: a subclass carries its bases' risky state.
        merged: dict[str, list[tuple[str, str]]] = {}
        for cinfo in project.classes.values():
            collected: list[tuple[str, str]] = []
            stack = [cinfo]
            seen: set[str] = set()
            while stack:
                current = stack.pop()
                if current.qualname in seen:
                    continue
                seen.add(current.qualname)
                collected.extend(direct.get(current.qualname, ()))
                for base in current.base_names:
                    resolved = project.find_class(base)
                    if resolved is not None:
                        stack.append(resolved)
            if collected:
                merged[cinfo.qualname] = collected
        return merged

    # -- per-function check --------------------------------------------------------

    def _check_function(
        self,
        project: ProjectModel,
        risky: dict[str, list[tuple[str, str]]],
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        context: str,
        enclosing: ClassInfo | None,
    ) -> Iterator[Diagnostic]:
        local_types = self._local_constructions(project, info, func)
        attr_types = (
            self._self_attr_classes(project, enclosing)
            if enclosing is not None
            else {}
        )
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and _is_process_ctor(info, node.func)
            ):
                continue
            for expr, role in self._captured(node):
                target = self._resolve_capture(
                    expr, enclosing, local_types, attr_types
                )
                if target is None:
                    continue
                for attr, why in risky.get(target.qualname, ()):
                    yield self.diagnostic(
                        info,
                        node.lineno,
                        node.col_offset,
                        f"`{target.name}` is shipped into a multiprocessing "
                        f"worker (via {role}) but holds `{attr}`, {why}, "
                        "which does not survive pickling into the child",
                        context=context,
                        hint=(
                            "pass a plain-data spec (dataclass of value "
                            "types) and rebuild live resources inside the "
                            "worker, or use multiprocessing primitives "
                            "(mp.Queue, ctx.Event) designed to cross"
                        ),
                    )

    def _captured(
        self, call: ast.Call
    ) -> Iterator[tuple[ast.expr, str]]:
        for kw in call.keywords:
            if kw.arg == "target":
                yield kw.value, "target="
            elif kw.arg in ("args", "kwargs"):
                if isinstance(kw.value, (ast.Tuple, ast.List)):
                    for element in kw.value.elts:
                        yield element, f"{kw.arg}="
                elif isinstance(kw.value, ast.Dict):
                    for element in kw.value.values:
                        yield element, "kwargs="
                else:
                    yield kw.value, f"{kw.arg}="

    def _resolve_capture(
        self,
        expr: ast.expr,
        enclosing: ClassInfo | None,
        local_types: dict[str, ClassInfo],
        attr_types: dict[str, ClassInfo],
    ) -> ClassInfo | None:
        # ``args=(spec, ...)`` — a locally constructed project object.
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return enclosing
            return local_types.get(expr.id)
        if isinstance(expr, ast.Attribute) and _is_self(expr.value):
            # ``args=(self.worker, ...)`` — a typed attribute of the class;
            # ``target=self.run`` — a bound method captures all of self.
            if expr.attr in attr_types:
                return attr_types[expr.attr]
            if enclosing is not None and any(
                isinstance(stmt, ast.FunctionDef) and stmt.name == expr.attr
                for stmt in enclosing.node.body
            ):
                return enclosing
        return None

    def _local_constructions(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, ClassInfo]:
        """Names assigned from a project-class constructor inside ``func``."""
        result: dict[str, ClassInfo] = {}
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            name = dotted_name(node.value.func)
            if name is None:
                continue
            found = project.find_class(info.resolve(name))
            if found is not None:
                result[target.id] = found
        return result

    def _self_attr_classes(
        self, project: ProjectModel, enclosing: ClassInfo
    ) -> dict[str, ClassInfo]:
        return project.attribute_types(enclosing)


__all__ = ["ForkSafetyChecker"]
