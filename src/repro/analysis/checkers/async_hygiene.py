"""RPR004 — async hygiene: keep the event loop unblocked.

The service's asyncio loop multiplexes every tenant's HTTP and SSE
traffic; one blocking call stalls all of them (heartbeats stop, clients
time out).  Two rules over every ``async def`` in the project:

1. **No blocking calls on the loop.**  Flagged when called (not merely
   referenced — passing ``self.manager.submit`` to ``run_in_executor`` is
   the sanctioned pattern) and not awaited:

   * blocking primitives: ``time.sleep``, ``socket.*`` / ``subprocess.*``,
     builtin ``open``, ``Path.read_text``/``write_text``, un-awaited
     ``.wait``/``.wait_for``/``.join``/``.acquire``/``.drain``, and
     ``.get``/``.put`` on queue-named receivers;
   * *transitively blocking* project methods: any method that acquires a
     ``threading`` lock, calls a blocking primitive, or calls another
     blocking method (computed to fixpoint over the class graph, with
     receivers typed from ``__init__`` annotations and return
     annotations).

2. **No ``await`` while holding a sync lock.**  An ``await`` inside
   ``with self._lock`` (or any ``with`` over a lock-ish name) parks the
   coroutine with the lock held; every thread and task that wants the
   lock then waits on the scheduler's mercy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.checkers.base import Checker
from repro.analysis.project import (
    ClassInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)

_BLOCKING_CALLS = {
    "time.sleep": "sleeps the whole event loop",
    "socket.create_connection": "synchronous network I/O",
    "socket.socket": "synchronous socket",
    "subprocess.run": "blocks on a child process",
    "subprocess.check_output": "blocks on a child process",
    "subprocess.check_call": "blocks on a child process",
}
_BLOCKING_ATTRS = {
    "wait": "blocking wait",
    "wait_for": "blocking wait",
    "join": "blocking join",
    "acquire": "blocking lock acquisition",
    "drain": "drains a stream synchronously",
    "read_text": "synchronous file I/O",
    "write_text": "synchronous file I/O",
    "read_bytes": "synchronous file I/O",
    "write_bytes": "synchronous file I/O",
    "recv": "synchronous socket read",
    "sendall": "synchronous socket write",
    "accept": "synchronous socket accept",
}
_QUEUE_ATTRS = {"get", "put"}
_LOCKISH = ("lock", "cond", "mutex")


def _lock_value_types() -> set[str]:
    return {"threading.Lock", "threading.RLock", "threading.Condition"}


class AsyncHygieneChecker(Checker):
    rule = "RPR004"
    title = "no blocking calls inside async def; no await under a sync lock"

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        blocking = self._blocking_methods(project)
        for info in project.modules.values():
            for func, context, cls in project.iter_functions(info):
                if not isinstance(func, ast.AsyncFunctionDef):
                    continue
                enclosing = (
                    project.find_class(f"{info.name}.{cls.name}")
                    if cls is not None
                    else None
                )
                yield from self._check_async_def(
                    project, info, func, context, enclosing, blocking
                )

    # -- which project methods block? ---------------------------------------------

    def _blocking_methods(
        self, project: ProjectModel
    ) -> dict[str, set[str]]:
        """class qualname -> names of methods that (transitively) block."""
        lock_types = _lock_value_types()
        blocking: dict[str, set[str]] = {}
        methods: dict[str, dict[str, ast.FunctionDef]] = {}
        attr_types: dict[str, dict[str, ClassInfo]] = {}

        for cinfo in project.classes.values():
            methods[cinfo.qualname] = {
                stmt.name: stmt
                for stmt in cinfo.node.body
                if isinstance(stmt, ast.FunctionDef)
            }
            attr_types[cinfo.qualname] = project.attribute_types(cinfo)
            seeds = set()
            for name, method in methods[cinfo.qualname].items():
                if self._blocks_directly(cinfo.module, method, lock_types):
                    seeds.add(name)
            if seeds:
                blocking[cinfo.qualname] = seeds

        # Propagate through self.X.m() / self.m() call edges to fixpoint.
        changed = True
        while changed:
            changed = False
            for cinfo in project.classes.values():
                qual = cinfo.qualname
                for name, method in methods[qual].items():
                    if name in blocking.get(qual, set()):
                        continue
                    if self._calls_blocking(
                        cinfo, method, attr_types[qual], blocking
                    ):
                        blocking.setdefault(qual, set()).add(name)
                        changed = True
        return blocking

    def _blocks_directly(
        self,
        info: ModuleInfo,
        method: ast.FunctionDef,
        lock_types: set[str],
    ) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    name = dotted_name(ctx)
                    if name and any(part in name.lower() for part in _LOCKISH):
                        return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and info.resolve(name) in _BLOCKING_CALLS:
                    return True
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"wait", "wait_for", "join", "acquire"}
                ):
                    return True
        return False

    def _calls_blocking(
        self,
        cinfo: ClassInfo,
        method: ast.FunctionDef,
        attrs: dict[str, ClassInfo],
        blocking: dict[str, set[str]],
    ) -> bool:
        for node in ast.walk(method):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            callee = node.func.attr
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if callee in blocking.get(cinfo.qualname, set()):
                    return True
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and receiver.attr in attrs
            ):
                target = attrs[receiver.attr]
                if callee in blocking.get(target.qualname, set()):
                    return True
        return False

    # -- per-async-def analysis ----------------------------------------------------

    def _check_async_def(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        func: ast.AsyncFunctionDef,
        context: str,
        enclosing: ClassInfo | None,
        blocking: dict[str, set[str]],
    ) -> Iterator[Diagnostic]:
        attrs = (
            project.attribute_types(enclosing) if enclosing is not None else {}
        )
        lock_attrs = self._sync_lock_attrs(project, enclosing)
        var_types: dict[str, ClassInfo] = {}

        def classify_call(call: ast.Call) -> Diagnostic | None:
            name = dotted_name(call.func)
            if name is not None:
                resolved = info.resolve(name)
                if resolved in _BLOCKING_CALLS:
                    return self.diagnostic(
                        info, call.lineno, call.col_offset,
                        f"blocking call `{resolved}(...)` on the event loop "
                        f"({_BLOCKING_CALLS[resolved]})",
                        context=context,
                        hint="await an async equivalent or run_in_executor",
                    )
                if resolved == "open" and isinstance(call.func, ast.Name):
                    return self.diagnostic(
                        info, call.lineno, call.col_offset,
                        "blocking file `open(...)` on the event loop",
                        context=context,
                        hint="run file I/O in an executor",
                    )
            if not isinstance(call.func, ast.Attribute):
                return None
            callee = call.func.attr
            receiver = call.func.value
            receiver_name = dotted_name(receiver) or ""
            target = self._receiver_class(
                enclosing, attrs, var_types, receiver
            )
            if target is not None and callee in blocking.get(
                target.qualname, set()
            ):
                return self.diagnostic(
                    info, call.lineno, call.col_offset,
                    f"`{target.name}.{callee}()` blocks (acquires locks / "
                    "waits) and runs on the event loop here",
                    context=context,
                    hint=(
                        "dispatch via loop.run_in_executor(None, "
                        f"{receiver_name or 'obj'}.{callee}, ...)"
                    ),
                )
            if callee in _BLOCKING_ATTRS:
                return self.diagnostic(
                    info, call.lineno, call.col_offset,
                    f"un-awaited `.{callee}(...)` "
                    f"({_BLOCKING_ATTRS[callee]}) inside async def",
                    context=context,
                    hint="await the async variant or run_in_executor",
                )
            if callee in _QUEUE_ATTRS and any(
                marker in receiver_name.lower()
                for marker in ("queue", "chunks", "events")
            ):
                return self.diagnostic(
                    info, call.lineno, call.col_offset,
                    f"queue `.{callee}(...)` can block the event loop",
                    context=context,
                    hint="use asyncio.Queue or run_in_executor",
                )
            return None

        def scan(node: ast.AST, holding: ast.With | None) -> Iterator[Diagnostic]:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return  # nested defs analyzed separately / not on this path
            if isinstance(node, ast.Await):
                if holding is not None:
                    yield self.diagnostic(
                        info, node.lineno, node.col_offset,
                        "`await` while holding a sync lock parks the "
                        "coroutine with the lock held",
                        context=context,
                        hint="release the lock before awaiting, or use "
                             "asyncio.Lock",
                    )
                # The awaited call itself is sanctioned; scan its arguments.
                value = node.value
                if isinstance(value, ast.Call):
                    for child in ast.iter_child_nodes(value):
                        if child is not value.func:
                            yield from scan(child, holding)
                    return
                yield from scan(value, holding)
                return
            if isinstance(node, ast.Call):
                diag = classify_call(node)
                if diag is not None:
                    yield diag
            if isinstance(node, ast.With):
                locks = [
                    item
                    for item in node.items
                    if self._is_sync_lock(item.context_expr, lock_attrs)
                ]
                for item in node.items:
                    yield from scan(item.context_expr, holding)
                inner = node if locks else holding
                for child in node.body:
                    yield from scan(child, inner)
                return
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                self._infer_assignment(project, info, attrs, var_types, node)
            for child in ast.iter_child_nodes(node):
                yield from scan(child, holding)

        for child in ast.iter_child_nodes(func):
            yield from scan(child, None)

    def _sync_lock_attrs(
        self, project: ProjectModel, enclosing: ClassInfo | None
    ) -> set[str]:
        if enclosing is None:
            return set()
        lock_types = _lock_value_types()
        found = set()
        for node in ast.walk(enclosing.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)
                ):
                    name = dotted_name(node.value.func)
                    if name and enclosing.module.resolve(name) in lock_types:
                        found.add(target.attr)
        return found

    def _is_sync_lock(self, expr: ast.expr, lock_attrs: set[str]) -> bool:
        name = dotted_name(expr)
        if name is None:
            return False
        if name.startswith("self.") and name.split(".", 1)[1] in lock_attrs:
            return True
        return any(part in name.lower() for part in _LOCKISH)

    def _receiver_class(
        self,
        enclosing: ClassInfo | None,
        attrs: dict[str, ClassInfo],
        var_types: dict[str, ClassInfo],
        receiver: ast.expr,
    ) -> ClassInfo | None:
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                return enclosing
            return var_types.get(receiver.id)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            return attrs.get(receiver.attr)
        return None

    def _infer_assignment(
        self,
        project: ProjectModel,
        info: ModuleInfo,
        attrs: dict[str, ClassInfo],
        var_types: dict[str, ClassInfo],
        node: ast.Assign,
    ) -> None:
        """Track `v = self.X.m(...)` when m's return annotation names a
        project class (one level, enough for record/session handles)."""
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = node.value
        while isinstance(value, ast.Await):
            value = value.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
        ):
            return
        receiver = value.func.value
        owner: ClassInfo | None = None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            owner = attrs.get(receiver.attr)
        elif isinstance(receiver, ast.Name):
            owner = var_types.get(receiver.id)
        if owner is None:
            return
        for stmt in owner.node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == value.func.attr
            ):
                returned = project.return_class(owner.module, stmt)
                if returned is not None:
                    var_types[target.id] = returned
                return


__all__ = ["AsyncHygieneChecker"]
