"""RPR007 — persistence hygiene: artifacts reach disk atomically.

Every on-disk artifact the repo produces — index segments, cache files,
catalog snapshots, ``BENCH_*.json`` reports, the analysis baseline — must go
through ``repro.persist.atomic_write_text`` / ``atomic_write_bytes``: a bare
``Path.write_text`` (or a numpy saver pointed at a path) that dies mid-write
leaves a truncated file that the next reader happily half-parses, which is
exactly the failure mode the crash-safety tests exist to rule out.

Two rules:

1. **No bare artifact writes outside ``persist``.**  ``.write_text(...)`` /
   ``.write_bytes(...)`` calls, builtin ``open()`` / ``os.fdopen()`` in a
   write mode, and ``np.save`` / ``np.savez`` / ``np.savez_compressed``
   targeting anything but an in-memory ``io.BytesIO`` buffer are flagged
   everywhere except the ``persist`` module itself (which owns the
   temp-file + fsync + rename dance).  The sanctioned idiom is: serialize
   into a ``BytesIO``, then hand ``buffer.getvalue()`` to the atomic writer.

2. **Memory-mapped files are closed before unlink.**  A function that opens
   an ``np.load(..., mmap_mode=...)`` view and then deletes paths
   (``os.unlink`` / ``os.remove`` / ``shutil.rmtree`` / ``Path.unlink``)
   without an intervening ``.close()`` risks deleting a file that is still
   mapped — harmless on POSIX, an error on platforms with mandatory sharing
   semantics, and a resource leak everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.project import ModuleInfo, ProjectModel, dotted_name

_WRITE_METHODS = {"write_text", "write_bytes"}
_NUMPY_SAVERS = {"numpy.save", "numpy.savez", "numpy.savez_compressed"}
_BUFFER_TYPES = {"io.BytesIO", "io.StringIO"}
_OPENERS = {"open", "os.fdopen"}
_PATH_DELETERS = {"os.unlink", "os.remove", "os.rmdir", "shutil.rmtree"}
_ATOMIC_HINT = (
    "serialize into an io.BytesIO and hand buffer.getvalue() to "
    "persist.atomic_write_bytes (or use atomic_write_text for text)"
)


def _mode_argument(node: ast.Call) -> str | None:
    """The file-mode string of an ``open``-style call, when it is a literal."""
    candidates: list[ast.expr] = []
    if len(node.args) >= 2:
        candidates.append(node.args[1])
    candidates.extend(
        kw.value for kw in node.keywords if kw.arg == "mode"
    )
    for arg in candidates:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _buffer_names(func: ast.AST, info: ModuleInfo) -> set[str]:
    """Names bound to in-memory ``io.BytesIO()`` buffers inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.NamedExpr):
            value, targets = node.value, [node.target]
        if not isinstance(value, ast.Call):
            continue
        constructor = dotted_name(value.func)
        if constructor is None or info.resolve(constructor) not in _BUFFER_TYPES:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _targets_buffer(arg: ast.expr, buffers: set[str], info: ModuleInfo) -> bool:
    """Whether a saver's first argument is an in-memory buffer."""
    if isinstance(arg, ast.Name):
        return arg.id in buffers
    if isinstance(arg, ast.NamedExpr):
        return _targets_buffer(arg.value, buffers, info)
    if isinstance(arg, ast.Call):
        constructor = dotted_name(arg.func)
        return (
            constructor is not None
            and info.resolve(constructor) in _BUFFER_TYPES
        )
    return False


class PersistenceHygieneChecker(Checker):
    rule = "RPR007"
    title = "artifact writes go through persist.atomic_write_*"

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        persist_module = f"{project.package}.persist"
        for info in project.modules.values():
            if info.name == persist_module:
                continue  # the atomic writer owns the raw-I/O dance
            for func, context, _cls in project.iter_functions(info):
                yield from self._check_writes(info, func, context)
                yield from self._check_mmap_unlink(info, func, context)

    # -- rule 1: bare writes -------------------------------------------------------

    def _check_writes(
        self, info: ModuleInfo, func: ast.AST, context: str
    ) -> Iterator[Diagnostic]:
        buffers = _buffer_names(func, info)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in _WRITE_METHODS
            ):
                yield self.diagnostic(
                    info,
                    node.lineno,
                    node.col_offset,
                    f"bare `.{node.func.attr}(...)` bypasses atomic persistence",
                    context=context,
                    hint=_ATOMIC_HINT,
                )
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = info.resolve(name)
            if resolved in _OPENERS:
                mode = _mode_argument(node)
                if mode is not None and any(c in mode for c in "wxa+"):
                    yield self.diagnostic(
                        info,
                        node.lineno,
                        node.col_offset,
                        f"`{name}(..., {mode!r})` writes a file directly, "
                        "bypassing atomic persistence",
                        context=context,
                        hint=_ATOMIC_HINT,
                    )
            elif resolved in _NUMPY_SAVERS and node.args:
                if not _targets_buffer(node.args[0], buffers, info):
                    yield self.diagnostic(
                        info,
                        node.lineno,
                        node.col_offset,
                        f"`{name}(...)` saves straight to a path, "
                        "bypassing atomic persistence",
                        context=context,
                        hint=_ATOMIC_HINT,
                    )

    # -- rule 2: close mmaps before unlink -----------------------------------------

    def _check_mmap_unlink(
        self, info: ModuleInfo, func: ast.AST, context: str
    ) -> Iterator[Diagnostic]:
        mmap_line: int | None = None
        close_lines: list[int] = []
        deletions: list[tuple[str, ast.Call]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "close":
                close_lines.append(node.lineno)
            name = dotted_name(node.func)
            resolved = info.resolve(name) if name is not None else None
            if resolved == "numpy.load" and any(
                kw.arg == "mmap_mode" for kw in node.keywords
            ):
                if mmap_line is None or node.lineno < mmap_line:
                    mmap_line = node.lineno
            elif resolved in _PATH_DELETERS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
                and name is None  # method on a computed receiver, e.g. a Path
            ):
                deletions.append((name or node.func.attr, node))
        if mmap_line is None:
            return
        for name, node in deletions:
            if node.lineno <= mmap_line:
                continue
            if any(mmap_line < line <= node.lineno for line in close_lines):
                continue
            yield self.diagnostic(
                info,
                node.lineno,
                node.col_offset,
                f"`{name}(...)` deletes files while an `np.load(..., "
                "mmap_mode=...)` view from this function may still be open",
                context=context,
                hint="close the memory-mapped view before unlinking its file",
            )


__all__ = ["PersistenceHygieneChecker"]
