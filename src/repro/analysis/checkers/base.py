"""Checker plugin interface."""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.project import ModuleInfo, ProjectModel


class Checker:
    """One rule.  Subclasses set ``rule``/``title`` and implement ``check``.

    ``check`` receives the whole project model and yields raw findings;
    pragma and baseline filtering happen in the runner, so checkers stay
    oblivious to suppression mechanics.
    """

    rule: str = "RPR000"
    title: str = ""
    severity: Severity = Severity.ERROR

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        raise NotImplementedError

    # -- convenience ---------------------------------------------------------------

    def diagnostic(
        self,
        module: ModuleInfo,
        line: int,
        col: int,
        message: str,
        *,
        context: str = "",
        hint: str = "",
        severity: Severity | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            path=module.relpath,
            line=line,
            col=col,
            rule=self.rule,
            message=message,
            context=context,
            hint=hint,
            severity=severity or self.severity,
        )


__all__ = ["Checker"]
