"""RPR003 — lock discipline for thread-shared classes.

A class that owns a :class:`threading.Lock` / ``RLock`` / ``Condition``
attribute is *thread-shared* (``SharedDetectionCache``, the ledgers,
``EventLog``, ``ServiceManager``, ``FairScheduler`` …).  Three rules:

1. **Self-mutation under the lock.**  Methods of a thread-shared class may
   mutate ``self`` state only inside ``with self._lock`` (any of the
   class's lock attributes).  ``__init__``/``__post_init__`` are exempt
   (no concurrent access before construction completes), as are methods
   whose name ends in ``_locked`` — the repo's caller-holds-the-lock
   convention.  Attributes holding inherently thread-safe primitives
   (queues, ``threading.Event``) are exempt.

2. **No external mutation of guarded state.**  An attribute the owner
   only ever mutates under its lock is *guarded*; assigning it from
   outside the owning class (``ledger.calls = …``) bypasses the lock even
   if the owner is disciplined.  Stores on ``self`` in unrelated classes
   are ignored (same attribute name, different object).

3. **Lock-order sanity.**  Calling another thread-shared class's
   lock-acquiring method while holding your own lock creates an edge in
   the lock-acquisition-order graph; a cycle means two threads can
   deadlock.  Re-acquiring your own non-reentrant lock (calling a
   ``with self._lock`` method while already inside one) self-deadlocks
   and is flagged directly.

The analysis is per-method and intentionally approximate: holding *any*
of a class's locks counts as "locked" (the classes here have one logical
lock per concern), and nested functions are assumed to run without the
enclosing lock (they usually escape to other threads).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.checkers.base import Checker
from repro.analysis.project import (
    ClassInfo,
    ModuleInfo,
    ProjectModel,
    dotted_name,
)

_LOCK_TYPES = {"threading.Lock", "threading.RLock", "threading.Condition"}
_PLAIN_LOCK = "threading.Lock"
_SAFE_TYPES = {
    "queue.Queue",
    "queue.SimpleQueue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "insert",
    "extend",
    "update",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
    "sort",
    "reverse",
    "put",
    "put_nowait",
}
_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__"}


def _is_exempt_method(name: str) -> bool:
    return name in _EXEMPT_METHODS or name.endswith("_locked")


@dataclass
class _SharedClass:
    info: ClassInfo
    lock_attrs: set[str] = dc_field(default_factory=set)
    plain_locks: set[str] = dc_field(default_factory=set)
    safe_attrs: set[str] = dc_field(default_factory=set)
    guarded_attrs: set[str] = dc_field(default_factory=set)
    acquiring_methods: set[str] = dc_field(default_factory=set)


def _value_type(info: ModuleInfo, value: ast.expr | None) -> str | None:
    """Resolved constructor name for ``threading.Lock()``-style values,
    including ``field(default_factory=threading.Lock)``."""
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    resolved = info.resolve(name)
    if resolved.rsplit(".", 1)[-1] == "field":
        for kw in value.keywords:
            if kw.arg == "default_factory":
                factory = dotted_name(kw.value)
                if factory is not None:
                    return info.resolve(factory)
        return None
    return resolved


def _iter_target_mutations(
    target: ast.expr,
) -> Iterator[tuple[ast.expr, str]]:
    """(receiver_expr, attr) pairs mutated by an assignment target."""
    if isinstance(target, ast.Attribute):
        yield target.value, target.attr
    elif isinstance(target, ast.Subscript) and isinstance(
        target.value, ast.Attribute
    ):
        yield target.value.value, target.value.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _iter_target_mutations(element)
    elif isinstance(target, ast.Starred):
        yield from _iter_target_mutations(target.value)


def _node_mutations(node: ast.AST) -> Iterator[tuple[ast.expr, str, ast.AST]]:
    """Mutations performed directly by ``node`` (no recursion)."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            for receiver, attr in _iter_target_mutations(target):
                yield receiver, attr, node
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        for receiver, attr in _iter_target_mutations(node.target):
            yield receiver, attr, node
    elif isinstance(node, ast.AugAssign):
        for receiver, attr in _iter_target_mutations(node.target):
            yield receiver, attr, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            for receiver, attr in _iter_target_mutations(target):
                yield receiver, attr, node
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS and isinstance(
            node.func.value, ast.Attribute
        ):
            yield node.func.value.value, node.func.value.attr, node


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


class LockDisciplineChecker(Checker):
    rule = "RPR003"
    title = "thread-shared state is mutated only under its lock"

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        shared = self._discover(project)
        for sc in shared.values():
            yield from self._check_class(project, sc)
        yield from self._check_external_stores(project, shared)
        yield from self._check_lock_order(project, shared)

    # -- discovery -----------------------------------------------------------------

    def _discover(self, project: ProjectModel) -> dict[str, _SharedClass]:
        direct: dict[str, _SharedClass] = {}
        for cinfo in project.classes.values():
            sc = _SharedClass(info=cinfo)
            for stmt in ast.walk(cinfo.node):
                attr: str | None = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, (ast.Name, ast.Attribute)
                ):
                    attr = (
                        stmt.target.id
                        if isinstance(stmt.target, ast.Name)
                        else stmt.target.attr
                        if _is_self(stmt.target.value)
                        else None
                    )
                    value = stmt.value
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        attr = target.id
                    elif isinstance(target, ast.Attribute) and _is_self(
                        target.value
                    ):
                        attr = target.attr
                    value = stmt.value
                if attr is None:
                    continue
                vtype = _value_type(cinfo.module, value)
                if vtype in _LOCK_TYPES:
                    sc.lock_attrs.add(attr)
                    if vtype == _PLAIN_LOCK:
                        sc.plain_locks.add(attr)
                elif vtype in _SAFE_TYPES:
                    sc.safe_attrs.add(attr)
            if sc.lock_attrs:
                direct[cinfo.qualname] = sc

        # Inheritance closure: subclasses of a lock owner share its lock.
        shared: dict[str, _SharedClass] = {}
        for cinfo in project.classes.values():
            merged = _SharedClass(info=cinfo)
            stack = [cinfo]
            seen: set[str] = set()
            while stack:
                current = stack.pop()
                if current.qualname in seen:
                    continue
                seen.add(current.qualname)
                own = direct.get(current.qualname)
                if own is None:
                    own_sc = None
                else:
                    own_sc = own
                if own_sc is not None:
                    merged.lock_attrs |= own_sc.lock_attrs
                    merged.plain_locks |= own_sc.plain_locks
                    merged.safe_attrs |= own_sc.safe_attrs
                for base in current.base_names:
                    resolved = project.find_class(base)
                    if resolved is not None:
                        stack.append(resolved)
            if merged.lock_attrs:
                shared[cinfo.qualname] = merged

        for sc in shared.values():
            for method in self._methods(sc.info):
                if self._acquires_lock(method, sc.lock_attrs):
                    sc.acquiring_methods.add(method.name)
        return shared

    def _methods(self, cinfo: ClassInfo) -> list[ast.FunctionDef]:
        return [
            stmt
            for stmt in cinfo.node.body
            if isinstance(stmt, ast.FunctionDef)
        ]

    def _acquires_lock(
        self, method: ast.FunctionDef, lock_attrs: set[str]
    ) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    if (
                        isinstance(ctx, ast.Attribute)
                        and _is_self(ctx.value)
                        and ctx.attr in lock_attrs
                    ):
                        return True
        return False

    # -- rule 1: self-mutations under the lock -------------------------------------

    def _check_class(
        self, project: ProjectModel, sc: _SharedClass
    ) -> Iterator[Diagnostic]:
        info = sc.info.module
        exempt_attrs = sc.lock_attrs | sc.safe_attrs
        for method in self._methods(sc.info):
            context = f"{info.name}.{sc.info.name}.{method.name}"
            exempt = _is_exempt_method(method.name)
            for receiver, attr, site, locked in self._walk_held(
                method, sc.lock_attrs, held=exempt and method.name.endswith("_locked")
            ):
                if not _is_self(receiver) or attr in exempt_attrs:
                    continue
                if locked:
                    sc.guarded_attrs.add(attr)
                    continue
                if exempt:
                    continue
                yield self.diagnostic(
                    info,
                    site.lineno,
                    site.col_offset,
                    f"`{sc.info.name}.{method.name}` mutates `self.{attr}` "
                    "outside the class lock",
                    context=context,
                    hint=(
                        "wrap the mutation in `with self."
                        f"{sorted(sc.lock_attrs)[0]}`, or rename the method "
                        "with a `_locked` suffix if the caller holds the lock"
                    ),
                )

    def _walk_held(
        self,
        root: ast.AST,
        lock_attrs: set[str],
        held: bool,
    ) -> Iterator[tuple[ast.expr, str, ast.AST, bool]]:
        """Yield (receiver, attr, site, was_lock_held) for every mutation."""

        def scan(
            node: ast.AST, locked: bool
        ) -> Iterator[tuple[ast.expr, str, ast.AST, bool]]:
            for receiver, attr, site in _node_mutations(node):
                yield receiver, attr, site, locked
            if isinstance(node, ast.With):
                acquires = any(
                    isinstance(item.context_expr, ast.Attribute)
                    and _is_self(item.context_expr.value)
                    and item.context_expr.attr in lock_attrs
                    for item in node.items
                )
                for child in node.body:
                    yield from scan(child, locked or acquires)
                return
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    # Nested functions usually escape to other threads;
                    # assume they run without the lock.
                    yield from scan(child, False)
                else:
                    yield from scan(child, locked)

        for child in ast.iter_child_nodes(root):
            yield from scan(child, held)

    # -- rule 2: external stores to guarded attributes -----------------------------

    def _check_external_stores(
        self, project: ProjectModel, shared: dict[str, _SharedClass]
    ) -> Iterator[Diagnostic]:
        owners: dict[str, list[_SharedClass]] = {}
        for sc in shared.values():
            for attr in sc.guarded_attrs:
                owners.setdefault(attr, []).append(sc)
        # Drop attribute names guarded by unrelated classes (too ambiguous).
        unambiguous: dict[str, _SharedClass] = {}
        for attr, classes in owners.items():
            base = classes[0]
            related = True
            for other in classes[1:]:
                if project.is_subclass(other.info, base.info.name):
                    continue
                if project.is_subclass(base.info, other.info.name):
                    base = other
                    continue
                related = False
                break
            if related:
                unambiguous[attr] = base

        for info in project.modules.values():
            for func, context, cls in project.iter_functions(info):
                enclosing: ClassInfo | None = None
                if cls is not None:
                    enclosing = project.find_class(f"{info.name}.{cls.name}")
                for receiver, attr, site in self._flat_mutations(func):
                    owner = unambiguous.get(attr)
                    if owner is None:
                        continue
                    if _is_self(receiver) or (
                        isinstance(receiver, ast.Name) and receiver.id == "cls"
                    ):
                        continue
                    if enclosing is not None and project.is_subclass(
                        enclosing, owner.info.name
                    ):
                        continue
                    yield self.diagnostic(
                        info,
                        site.lineno,
                        site.col_offset,
                        f"external mutation of `{attr}`, guarded state of "
                        f"thread-shared `{owner.info.name}`",
                        context=context,
                        hint=(
                            f"add/use a locked method on {owner.info.name} "
                            "instead of reaching into its attributes"
                        ),
                    )

    def _flat_mutations(
        self, func: ast.AST
    ) -> Iterator[tuple[ast.expr, str, ast.AST]]:
        for node in ast.walk(func):
            yield from _node_mutations(node)

    # -- rule 3: lock-order graph --------------------------------------------------

    def _check_lock_order(
        self, project: ProjectModel, shared: dict[str, _SharedClass]
    ) -> Iterator[Diagnostic]:
        by_method: dict[str, list[_SharedClass]] = {}
        for sc in shared.values():
            for name in sc.acquiring_methods:
                by_method.setdefault(name, []).append(sc)

        edges: dict[tuple[str, str], list[tuple[ModuleInfo, str, ast.AST]]] = {}
        self_deadlocks: list[tuple[_SharedClass, str, ModuleInfo, ast.AST]] = []

        for sc in shared.values():
            attr_types = project.attribute_types(sc.info)
            for method in self._methods(sc.info):
                context = f"{sc.info.module.name}.{sc.info.name}.{method.name}"
                for call, locked in self._walk_calls(
                    method,
                    sc.lock_attrs,
                    held=method.name.endswith("_locked"),
                ):
                    if not locked:
                        continue
                    if not isinstance(call.func, ast.Attribute):
                        continue
                    callee = call.func.attr
                    receiver = call.func.value
                    target = self._callee_class(
                        project, sc, attr_types, receiver, callee, by_method
                    )
                    if target is None:
                        continue
                    if target.info.qualname == sc.info.qualname:
                        if (
                            _is_self(receiver)
                            and callee in sc.acquiring_methods
                            and sc.plain_locks
                        ):
                            self_deadlocks.append(
                                (sc, callee, sc.info.module, call)
                            )
                        continue
                    edges.setdefault(
                        (sc.info.qualname, target.info.qualname), []
                    ).append((sc.info.module, context, call))

        for sc, callee, info, call in self_deadlocks:
            yield self.diagnostic(
                info,
                call.lineno,
                call.col_offset,
                f"`{sc.info.name}` calls lock-acquiring `self.{callee}()` "
                "while already holding its non-reentrant lock",
                context=f"{info.name}.{sc.info.name}",
                hint="split out a `_locked` variant or use an RLock",
            )

        # Cycle detection over the class-level edge set.
        graph: dict[str, set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
        cyclic_edges = self._edges_in_cycles(graph)
        for (src, dst) in sorted(cyclic_edges):
            for info, context, call in edges[(src, dst)]:
                yield self.diagnostic(
                    info,
                    call.lineno,
                    call.col_offset,
                    "lock-order cycle: "
                    f"`{src.rsplit('.', 1)[-1]}` acquires "
                    f"`{dst.rsplit('.', 1)[-1]}`'s lock while holding its own, "
                    "and the reverse path also exists",
                    context=context,
                    hint=(
                        "establish a global acquisition order between these "
                        "classes, or move the call outside the locked region"
                    ),
                )

    def _walk_calls(
        self, method: ast.FunctionDef, lock_attrs: set[str], held: bool
    ) -> Iterator[tuple[ast.Call, bool]]:
        def scan(node: ast.AST, locked: bool) -> Iterator[tuple[ast.Call, bool]]:
            if isinstance(node, ast.Call):
                yield node, locked
            if isinstance(node, ast.With):
                acquires = any(
                    isinstance(item.context_expr, ast.Attribute)
                    and _is_self(item.context_expr.value)
                    and item.context_expr.attr in lock_attrs
                    for item in node.items
                )
                for item in node.items:
                    yield from scan(item.context_expr, locked)
                for child in node.body:
                    yield from scan(child, locked or acquires)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                if node is not method:
                    for child in ast.iter_child_nodes(node):
                        yield from scan(child, False)
                    return
            for child in ast.iter_child_nodes(node):
                yield from scan(child, locked)

        yield from scan(method, held)

    def _callee_class(
        self,
        project: ProjectModel,
        caller: _SharedClass,
        attr_types: dict[str, ClassInfo],
        receiver: ast.expr,
        callee: str,
        by_method: dict[str, list[_SharedClass]],
    ) -> _SharedClass | None:
        if _is_self(receiver):
            if callee in caller.acquiring_methods:
                return caller
            return None
        # `self.<attr>.<callee>()` with a typed attribute wins.
        if (
            isinstance(receiver, ast.Attribute)
            and _is_self(receiver.value)
            and receiver.attr in attr_types
        ):
            target = attr_types[receiver.attr]
            for sc in by_method.get(callee, []):
                if sc.info.qualname == target.qualname:
                    return sc
            return None
        # Fallback: the method name is unique to one lock-owning class.
        candidates = [
            sc
            for sc in by_method.get(callee, [])
            if sc.info.qualname != caller.info.qualname
        ]
        if len(candidates) == 1 and callee not in caller.acquiring_methods:
            return candidates[0]
        return None

    def _edges_in_cycles(
        self, graph: dict[str, set[str]]
    ) -> set[tuple[str, str]]:
        """Edges whose endpoints are in one strongly connected component."""
        index = 0
        stack: list[str] = []
        on_stack: set[str] = set()
        indices: dict[str, int] = {}
        low: dict[str, int] = {}
        component: dict[str, int] = {}
        comp_id = 0
        nodes = set(graph) | {dst for dsts in graph.values() for dst in dsts}

        def strongconnect(node: str) -> None:
            nonlocal index, comp_id
            indices[node] = low[node] = index
            index += 1
            stack.append(node)
            on_stack.add(node)
            for succ in graph.get(node, ()):
                if succ not in indices:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], indices[succ])
            if low[node] == indices[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id
                    if member == node:
                        break
                comp_id += 1

        for node in sorted(nodes):
            if node not in indices:
                strongconnect(node)

        counts: dict[int, int] = {}
        for comp in component.values():
            counts[comp] = counts.get(comp, 0) + 1
        cyclic = set()
        for src, dsts in graph.items():
            for dst in dsts:
                if component[src] == component[dst] and counts[component[src]] > 1:
                    cyclic.add((src, dst))
        return cyclic


__all__ = ["LockDisciplineChecker"]
