"""RPR001 — determinism: no wall-clock or unseeded randomness in
result-producing modules.

Reproduction results must be a pure function of (video, query, engine
seed).  Sources of hidden nondeterminism — the stdlib ``random`` module,
numpy's global RNG, unseeded ``np.random.default_rng()`` /
``SeedSequence()``, and wall-clock reads (``time.time``,
``datetime.now``, ``perf_counter`` …) — are banned everywhere except the
service plumbing modules (timeouts and heartbeats legitimately read
clocks).  The sanctioned ledger wall-clock stamping site carries an
inline ``# repro: allow[RPR001]`` pragma rather than a hard-coded
exemption, so moving it shows up in review.

:mod:`symtable` distinguishes the stdlib module from a local variable
that merely shares its name: ``random = rng_for(shard)`` followed by
``random.random()`` is not a finding.
"""

from __future__ import annotations

import ast
import symtable
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.checkers.base import Checker
from repro.analysis.project import ModuleInfo, ProjectModel, dotted_name

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

# np.random constructors that are fine *with* an explicit seed argument.
_SEEDABLE = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

_TRACKED_ROOTS = {"random", "numpy", "time", "datetime"}


class DeterminismChecker(Checker):
    rule = "RPR001"
    title = "no wall-clock or unseeded randomness in result-producing code"

    def _excluded(self, project: ProjectModel) -> set[str]:
        pkg = project.package
        return {
            f"{pkg}/service/app.py",
            f"{pkg}/service/client.py",
            f"{pkg}/service/manager.py",
            f"{pkg}/service/scheduler.py",
        }

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        excluded = self._excluded(project)
        for info in project.modules.values():
            if info.relpath in excluded:
                continue
            yield from self._check_module(info)

    # -- per-module walk -----------------------------------------------------------

    def _check_module(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        scope_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        context_stack: list[str] = [info.name]

        def scan(node: ast.AST) -> Iterator[Diagnostic]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope_stack.append(node)
                context_stack.append(f"{context_stack[-1]}.{node.name}")
                for child in ast.iter_child_nodes(node):
                    yield from scan(child)
                context_stack.pop()
                scope_stack.pop()
                return
            if isinstance(node, ast.ClassDef):
                context_stack.append(f"{context_stack[-1]}.{node.name}")
                for child in ast.iter_child_nodes(node):
                    yield from scan(child)
                context_stack.pop()
                return
            if isinstance(node, ast.Call):
                diag = self._classify(info, node.func, context_stack[-1],
                                      scope_stack, call=node)
                if diag is not None:
                    yield diag
                    # The callee chain is handled; still scan the arguments.
                    for child in ast.iter_child_nodes(node):
                        if child is not node.func:
                            yield from scan(child)
                    return
            elif isinstance(node, ast.Attribute):
                diag = self._classify(info, node, context_stack[-1],
                                      scope_stack, call=None)
                if diag is not None:
                    yield diag
                    return  # don't re-flag the inner chain
            for child in ast.iter_child_nodes(node):
                yield from scan(child)

        yield from scan(info.tree)

    def _classify(
        self,
        info: ModuleInfo,
        chain: ast.AST,
        context: str,
        scope_stack: list[ast.FunctionDef | ast.AsyncFunctionDef],
        call: ast.Call | None,
    ) -> Diagnostic | None:
        name = dotted_name(chain)
        if name is None:
            return None
        head = name.split(".", 1)[0]
        if head not in info.imports:
            return None
        resolved = info.resolve(name)
        root = resolved.split(".", 1)[0]
        if root not in _TRACKED_ROOTS:
            return None
        if self._locally_bound(info, scope_stack, head):
            return None
        line, col = chain.lineno, chain.col_offset

        if resolved in _WALL_CLOCK:
            return self.diagnostic(
                info, line, col,
                f"wall-clock read `{resolved}` in result-producing code",
                context=context,
                hint=(
                    "results must be a pure function of (video, query, seed); "
                    "ledger wall_seconds stamping is the only sanctioned sink "
                    "(pragma that site with `# repro: allow[RPR001]`)"
                ),
            )
        if resolved in _SEEDABLE:
            if call is not None and not call.args and not call.keywords:
                return self.diagnostic(
                    info, line, col,
                    f"unseeded `{resolved}()` draws OS entropy",
                    context=context,
                    hint="pass an explicit seed derived from the engine seed",
                )
            return None
        if root == "random":
            return self.diagnostic(
                info, line, col,
                f"stdlib `{resolved}` uses hidden global RNG state",
                context=context,
                hint="use a numpy Generator seeded from the engine SeedSequence",
            )
        if resolved.startswith("numpy.random."):
            # Anything else on np.random is the legacy global-state API.
            return self.diagnostic(
                info, line, col,
                f"`{resolved}` uses numpy's global RNG state",
                context=context,
                hint="use an explicit np.random.Generator seeded per shard",
            )
        return None

    def _locally_bound(
        self,
        info: ModuleInfo,
        scope_stack: list[ast.FunctionDef | ast.AsyncFunctionDef],
        head: str,
    ) -> bool:
        """True when ``head`` is rebound in an enclosing function scope."""
        for func in reversed(scope_stack):
            table = info.scope_for(func)
            if table is None:
                continue
            try:
                symbol = table.lookup(head)
            except KeyError:
                continue
            if (symbol.is_local() or symbol.is_free()) and not symbol.is_imported():
                return True
            if symbol.is_global():
                return False
        return False


__all__ = ["DeterminismChecker"]
