"""Checker registry: one plugin per enforced invariant."""

from __future__ import annotations

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.ledger import LedgerAccountingChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.async_hygiene import AsyncHygieneChecker
from repro.analysis.checkers.wire import WireExhaustivenessChecker
from repro.analysis.checkers.fork_safety import ForkSafetyChecker
from repro.analysis.checkers.persistence import PersistenceHygieneChecker
from repro.analysis.checkers.observability import ObservabilityHygieneChecker


def all_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker, in rule order."""
    return [
        DeterminismChecker(),
        LedgerAccountingChecker(),
        LockDisciplineChecker(),
        AsyncHygieneChecker(),
        WireExhaustivenessChecker(),
        ForkSafetyChecker(),
        PersistenceHygieneChecker(),
        ObservabilityHygieneChecker(),
    ]


__all__ = [
    "AsyncHygieneChecker",
    "Checker",
    "DeterminismChecker",
    "ForkSafetyChecker",
    "LedgerAccountingChecker",
    "LockDisciplineChecker",
    "ObservabilityHygieneChecker",
    "PersistenceHygieneChecker",
    "WireExhaustivenessChecker",
    "all_checkers",
]
