"""Checker registry: one plugin per enforced invariant."""

from __future__ import annotations

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.ledger import LedgerAccountingChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.async_hygiene import AsyncHygieneChecker
from repro.analysis.checkers.wire import WireExhaustivenessChecker


def all_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker, in rule order."""
    return [
        DeterminismChecker(),
        LedgerAccountingChecker(),
        LockDisciplineChecker(),
        AsyncHygieneChecker(),
        WireExhaustivenessChecker(),
    ]


__all__ = [
    "AsyncHygieneChecker",
    "Checker",
    "DeterminismChecker",
    "LedgerAccountingChecker",
    "LockDisciplineChecker",
    "WireExhaustivenessChecker",
    "all_checkers",
]
