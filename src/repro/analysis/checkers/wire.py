"""RPR005 — wire exhaustiveness: every event/result class has a codec.

The service streams :class:`ExecutionEvent` objects over SSE and returns
:class:`QueryResult` payloads; both travel through
``service/protocol.py``.  A subclass without a registered codec
deserializes as the wrong type (or not at all) *only on the wire path*,
silently breaking the cross-path result-identity guarantee the identity
tests enforce.  Checked, all via the project model (no imports executed):

* every concrete ``ExecutionEvent`` subclass defines its own
  ``wire_name`` (tags must not be inherited — two classes sharing a tag
  decode ambiguously), and the tags are globally unique;
* every event subclass is registered in ``event_wire_types()`` — the
  single registry driving both ``event_to_json`` and ``event_from_json``;
* every concrete ``QueryResult`` subclass is handled by the protocol
  module (the ``_RESULT_TYPES`` table / ``result_to_json`` /
  ``result_from_json``), and therefore by ``result_fingerprint``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.checkers.base import Checker
from repro.analysis.project import ClassInfo, ModuleInfo, ProjectModel

_EVENT_BASE = "ExecutionEvent"
_RESULT_BASE = "QueryResult"
_REGISTRY_FUNC = "event_wire_types"


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class WireExhaustivenessChecker(Checker):
    rule = "RPR005"
    title = "every event/result class has a registered wire codec"

    def check(self, project: ProjectModel) -> Iterator[Diagnostic]:
        yield from self._check_events(project)
        yield from self._check_results(project)

    # -- events --------------------------------------------------------------------

    def _find_registry(
        self, project: ProjectModel
    ) -> tuple[ModuleInfo, ast.FunctionDef] | None:
        for info in project.modules.values():
            for node in ast.walk(info.tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == _REGISTRY_FUNC
                ):
                    return info, node
        return None

    def _check_events(self, project: ProjectModel) -> Iterator[Diagnostic]:
        if project.find_class(_EVENT_BASE) is None:
            return
        subclasses = project.subclasses_of(_EVENT_BASE)
        if not subclasses:
            return
        registry = self._find_registry(project)
        registered = _names_in(registry[1]) if registry else set()
        tags: dict[str, ClassInfo] = {}

        for cinfo in sorted(subclasses, key=lambda c: c.qualname):
            wire_name = self._own_wire_name(cinfo)
            if wire_name is None:
                yield self.diagnostic(
                    cinfo.module,
                    cinfo.node.lineno,
                    cinfo.node.col_offset,
                    f"event `{cinfo.name}` defines no `wire_name` of its own",
                    context=cinfo.qualname,
                    hint=(
                        "add `wire_name: ClassVar[str] = \"...\"` — inherited "
                        "tags make two event types indistinguishable on the "
                        "wire"
                    ),
                )
            else:
                first = tags.setdefault(wire_name, cinfo)
                if first is not cinfo:
                    yield self.diagnostic(
                        cinfo.module,
                        cinfo.node.lineno,
                        cinfo.node.col_offset,
                        f"event `{cinfo.name}` reuses wire tag "
                        f"`{wire_name}` already taken by `{first.name}`",
                        context=cinfo.qualname,
                        hint="wire tags must be unique per event type",
                    )
            if registry is not None and cinfo.name not in registered:
                yield self.diagnostic(
                    cinfo.module,
                    cinfo.node.lineno,
                    cinfo.node.col_offset,
                    f"event `{cinfo.name}` is not registered in "
                    f"`{_REGISTRY_FUNC}()`; it cannot be decoded from the "
                    "wire",
                    context=cinfo.qualname,
                    hint=f"add it to the registry in {registry[0].relpath}",
                )

    def _own_wire_name(self, cinfo: ClassInfo) -> str | None:
        for stmt in cinfo.node.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "wire_name"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                return value.value
        return None

    # -- results -------------------------------------------------------------------

    def _find_protocol(self, project: ProjectModel) -> ModuleInfo | None:
        for info in project.modules.values():
            if info.name.endswith(".protocol"):
                return info
        for info in project.modules.values():
            defined = {
                node.name
                for node in ast.walk(info.tree)
                if isinstance(node, ast.FunctionDef)
            }
            if {"result_to_json", "result_from_json"} <= defined:
                return info
        return None

    def _check_results(self, project: ProjectModel) -> Iterator[Diagnostic]:
        if project.find_class(_RESULT_BASE) is None:
            return
        subclasses = project.subclasses_of(_RESULT_BASE)
        protocol = self._find_protocol(project)
        if protocol is None or not subclasses:
            return
        # Names *used* in the protocol module (import aliases don't count).
        referenced = _names_in(protocol.tree)
        for cinfo in sorted(subclasses, key=lambda c: c.qualname):
            if cinfo.name not in referenced:
                yield self.diagnostic(
                    cinfo.module,
                    cinfo.node.lineno,
                    cinfo.node.col_offset,
                    f"result `{cinfo.name}` has no codec in "
                    f"{protocol.relpath}; `result_fingerprint` cannot cover "
                    "it on the wire path",
                    context=cinfo.qualname,
                    hint=(
                        "register it in _RESULT_TYPES and handle its fields "
                        "in result_to_json/result_from_json"
                    ),
                )


__all__ = ["WireExhaustivenessChecker"]
