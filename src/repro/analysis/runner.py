"""Run checkers over a project, apply pragmas and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import all_checkers
from repro.analysis.checkers.base import Checker
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pragmas import pragma_allows
from repro.analysis.project import ProjectModel


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced, pre-sorted."""

    findings: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    stale_baseline: list[tuple[str, str, str, str]] = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_active(self) -> list[Diagnostic]:
        """Findings plus baselined ones — what ``--write-baseline`` saves."""
        return sorted([*self.findings, *self.baselined])


def run_analysis(
    root: Path,
    *,
    package: str | None = None,
    checkers: list[Checker] | None = None,
    baseline: Baseline | None = None,
    project: ProjectModel | None = None,
) -> AnalysisReport:
    """Analyze the package at ``root`` and triage every diagnostic into
    active finding / baselined / pragma-suppressed."""
    if project is None:
        project = ProjectModel.build(root, package)
    if checkers is None:
        checkers = all_checkers()
    if baseline is None:
        baseline = Baseline()

    by_relpath = {info.relpath: info for info in project.modules.values()}
    report = AnalysisReport(modules_scanned=len(project.modules))
    raw: list[Diagnostic] = []
    for checker in checkers:
        raw.extend(checker.check(project))

    for diag in sorted(set(raw)):
        module = by_relpath.get(diag.path)
        if module is not None and pragma_allows(
            module.pragmas, diag.line, diag.rule
        ):
            report.suppressed.append(diag)
        elif baseline.contains(diag):
            report.baselined.append(diag)
        else:
            report.findings.append(diag)
    report.stale_baseline = baseline.stale_entries(sorted(set(raw)))
    return report


__all__ = ["AnalysisReport", "run_analysis"]
