"""CLI: ``python -m repro.analysis [--format text|json|github]``.

Exit status is 1 when any non-baselined, non-pragma finding exists (the
CI gate), 0 otherwise.  ``--write-baseline`` accepts the current findings
into the baseline file instead of failing; justifications for entries
already on file are preserved, new ones get a TODO placeholder that
review is expected to replace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.diagnostics import format_diagnostics
from repro.analysis.runner import run_analysis


def _default_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _default_baseline(root: Path) -> Path:
    # src-layout: <repo>/src/<pkg> -> <repo>/analysis-baseline.json
    candidate = root.parent.parent / "analysis-baseline.json"
    if candidate.exists():
        return candidate
    cwd_candidate = Path.cwd() / "analysis-baseline.json"
    if cwd_candidate.exists():
        return cwd_candidate
    return candidate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant analysis for the reproduction.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to analyze (default: the installed repro "
        "package)",
    )
    parser.add_argument(
        "--package",
        default=None,
        help="package name for module paths (default: the root dir name)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: analysis-baseline.json at the repo "
        "root)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into the baseline instead of failing",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    root = (args.root or _default_root()).resolve()
    baseline_path = args.baseline or _default_baseline(root)
    baseline = Baseline.load(baseline_path)
    report = run_analysis(root, package=args.package, baseline=baseline)

    if args.write_baseline:
        baseline.write(baseline_path, report.all_active())
        if not args.quiet:
            print(
                f"wrote {len(report.all_active())} finding(s) to "
                f"{baseline_path}"
            )
        return 0

    if report.findings or args.format == "json":
        # JSON consumers get a well-formed (possibly empty) document either
        # way; text/github stay silent when there is nothing to report.
        print(format_diagnostics(report.findings, args.format))
    if not args.quiet:
        summary = (
            f"repro.analysis: {len(report.findings)} finding(s), "
            f"{len(report.baselined)} baselined, "
            f"{len(report.suppressed)} pragma-suppressed, "
            f"{report.modules_scanned} modules scanned"
        )
        print(summary, file=sys.stderr)
        for key in report.stale_baseline:
            print(
                f"repro.analysis: stale baseline entry (no longer "
                f"produced): {key}",
                file=sys.stderr,
            )
    return 1 if report.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
