"""Typed diagnostics and output formatting for the invariant analyzer."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; both levels gate CI, warnings are advisory."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violated at a specific source location.

    ``context`` is the dotted path of the enclosing scope (module, class,
    or function qualname) and is part of the baseline identity, so a
    grandfathered finding stays matched when unrelated edits shift line
    numbers.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    context: str = ""
    hint: str = ""
    severity: Severity = field(default=Severity.ERROR, compare=False)

    @property
    def baseline_key(self) -> tuple[str, str, str, str]:
        return (self.rule, self.path, self.context, self.message)

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "message": self.message,
            "hint": self.hint,
        }


def _format_text(diagnostics: list[Diagnostic]) -> str:
    lines = []
    for diag in diagnostics:
        where = f"{diag.path}:{diag.line}:{diag.col}"
        lines.append(
            f"{where}: {diag.severity.value} {diag.rule} {diag.message}"
            + (f" [{diag.context}]" if diag.context else "")
        )
        if diag.hint:
            lines.append(f"    hint: {diag.hint}")
    return "\n".join(lines)


def _format_github(diagnostics: list[Diagnostic]) -> str:
    """GitHub Actions workflow commands: annotations on the PR diff."""
    lines = []
    for diag in diagnostics:
        level = "error" if diag.severity is Severity.ERROR else "warning"
        message = diag.message
        if diag.hint:
            message = f"{message} — {diag.hint}"
        # Workflow-command data must escape newlines and percent signs.
        message = (
            message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )
        lines.append(
            f"::{level} file={diag.path},line={diag.line},col={diag.col},"
            f"title={diag.rule}::{message}"
        )
    return "\n".join(lines)


def _format_json(diagnostics: list[Diagnostic]) -> str:
    return json.dumps([diag.to_json() for diag in diagnostics], indent=2)


_FORMATTERS = {
    "text": _format_text,
    "github": _format_github,
    "json": _format_json,
}


def format_diagnostics(diagnostics: list[Diagnostic], fmt: str = "text") -> str:
    """Render ``diagnostics`` in ``fmt`` (``text`` | ``json`` | ``github``)."""
    try:
        formatter = _FORMATTERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(_FORMATTERS)}"
        ) from None
    return formatter(sorted(diagnostics))


__all__ = ["Diagnostic", "Severity", "format_diagnostics"]
