"""``# repro: allow[RULE]`` inline suppression pragmas.

A pragma suppresses findings of the named rule(s) on its own line, or — when
the pragma is the only thing on its line — on the next source line.  A
reason after a second colon is encouraged and surfaced by ``--explain``
style tooling, e.g.::

    frames = detector.detect_many(video, missing)  # repro: allow[RPR002]: speculative, charged on consumption

``allow[*]`` suppresses every rule on the target line.
"""

from __future__ import annotations

import re

_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9*,\s]+)\]"
    r"(?::\s*(?P<reason>.*))?"
)


def parse_pragmas(source_lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule ids allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for index, text in enumerate(source_lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        if not rules:
            continue
        allowed.setdefault(index, set()).update(rules)
        # A comment-only line shields the following statement line.
        before = text[: match.start()].strip()
        if before == "" or before == "#":
            allowed.setdefault(index + 1, set()).update(rules)
    return {line: frozenset(rules) for line, rules in allowed.items()}


def pragma_allows(
    pragmas: dict[int, frozenset[str]], line: int, rule: str
) -> bool:
    """True when a pragma on/above ``line`` suppresses ``rule``."""
    rules = pragmas.get(line)
    if not rules:
        return False
    return "*" in rules or rule.upper() in rules


__all__ = ["parse_pragmas", "pragma_allows"]
