"""Accuracy metrics used in the evaluation (Section 10.1).

The paper reports absolute error for aggregate queries, throughput only for
scrubbing queries (they return only true positives), and false negative rate
for selection queries.  These helpers compute those metrics plus the standard
precision/recall pair used by the detection substrate's mAP computation.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence


def absolute_error(estimate: float, truth: float) -> float:
    """Absolute difference between an estimate and the ground truth."""
    return abs(estimate - truth)


def relative_error(estimate: float, truth: float) -> float:
    """Relative error, guarding against a zero ground truth."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def false_negative_rate(
    returned: Collection[int], relevant: Collection[int]
) -> float:
    """Fraction of relevant items missing from the returned set.

    Parameters
    ----------
    returned:
        Identifiers (typically frame indices) the system returned.
    relevant:
        Identifiers that truly satisfy the predicate.
    """
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    returned_set = set(returned)
    missed = len(relevant_set - returned_set)
    return missed / len(relevant_set)


def false_positive_rate(
    returned: Collection[int],
    relevant: Collection[int],
    universe_size: int,
) -> float:
    """Fraction of irrelevant items that were returned.

    ``universe_size`` is the total number of candidate items (e.g. frames in
    the video); the number of irrelevant items is ``universe_size`` minus the
    number of relevant ones.
    """
    relevant_set = set(relevant)
    returned_set = set(returned)
    negatives = universe_size - len(relevant_set)
    if negatives <= 0:
        return 0.0
    false_positives = len(returned_set - relevant_set)
    return false_positives / negatives


def precision_recall(
    returned: Collection[int], relevant: Collection[int]
) -> tuple[float, float]:
    """Precision and recall of ``returned`` against ``relevant``."""
    returned_set = set(returned)
    relevant_set = set(relevant)
    true_positives = len(returned_set & relevant_set)
    precision = true_positives / len(returned_set) if returned_set else 1.0
    recall = true_positives / len(relevant_set) if relevant_set else 1.0
    return precision, recall


def mean_absolute_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean absolute error over paired sequences."""
    if len(estimates) != len(truths):
        raise ValueError(
            f"length mismatch: {len(estimates)} estimates vs {len(truths)} truths"
        )
    if not estimates:
        return 0.0
    return sum(abs(e - t) for e, t in zip(estimates, truths, strict=True)) / len(estimates)
