"""Simulated runtime accounting.

The paper measures end-to-end runtime on a Tesla P100 and, for the most
detection-heavy experiments, *extrapolates* runtime from the number of object
detection calls (Sections 10.2 and 10.4).  This reproduction has no GPU, so we
adopt the same accounting model everywhere: every operator invocation charges
a deterministic cost (in simulated seconds) to a :class:`RuntimeLedger`.

The default per-operator throughputs are the ones the paper reports:

* Mask R-CNN object detection: ~3 fps
* FGFA object detection: ~3 fps (the paper groups it with Mask R-CNN)
* YOLOv2: ~80 fps
* specialized NNs: ~10,000 fps
* simple (non-NN) filters: ~100,000 fps

Only *relative* runtimes (speedup factors, crossover points) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OperatorCost:
    """Cost of a single operator invocation.

    Parameters
    ----------
    name:
        Operator identifier used for ledger break-downs (e.g. ``"mask_rcnn"``).
    seconds_per_call:
        Simulated seconds charged for each invocation.
    """

    name: str
    seconds_per_call: float

    @classmethod
    def from_fps(cls, name: str, fps: float) -> "OperatorCost":
        """Build a cost from a throughput expressed in frames per second."""
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        return cls(name=name, seconds_per_call=1.0 / fps)


class StandardCosts:
    """The operator throughputs reported by the paper (Section 5 and 9)."""

    MASK_RCNN = OperatorCost.from_fps("mask_rcnn", 3.0)
    FGFA = OperatorCost.from_fps("fgfa", 3.0)
    YOLOV2 = OperatorCost.from_fps("yolov2", 80.0)
    SPECIALIZED_NN = OperatorCost.from_fps("specialized_nn", 10_000.0)
    SPECIALIZED_NN_TRAIN = OperatorCost.from_fps("specialized_nn_train", 2_500.0)
    SIMPLE_FILTER = OperatorCost.from_fps("simple_filter", 100_000.0)
    VIDEO_DECODE = OperatorCost.from_fps("video_decode", 300.0)

    @classmethod
    def all_costs(cls) -> dict[str, OperatorCost]:
        """Return every standard cost keyed by operator name."""
        costs = {}
        for attr in dir(cls):
            value = getattr(cls, attr)
            if isinstance(value, OperatorCost):
                costs[value.name] = value
        return costs


@dataclass
class RuntimeLedger:
    """Accumulates simulated runtime, broken down by operator.

    The ledger is the single source of truth for "how long did this query
    take" in the reproduction.  Operators call :meth:`charge` once per frame
    they process; benchmark harnesses read :attr:`total_seconds` and
    :meth:`breakdown`.
    """

    charges: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def charge(self, cost: OperatorCost, count: int = 1) -> float:
        """Charge ``count`` invocations of ``cost`` and return the seconds added."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        seconds = cost.seconds_per_call * count
        self.charges[cost.name] = self.charges.get(cost.name, 0.0) + seconds
        self.calls[cost.name] = self.calls.get(cost.name, 0) + count
        return seconds

    def charge_seconds(self, name: str, seconds: float) -> float:
        """Charge an arbitrary number of simulated seconds to an operator."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self.charges[name] = self.charges.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1
        return seconds

    @property
    def total_seconds(self) -> float:
        """Total simulated runtime accumulated so far."""
        return sum(self.charges.values())

    def call_count(self, name: str) -> int:
        """Number of invocations charged for operator ``name``."""
        return self.calls.get(name, 0)

    def seconds_for(self, name: str) -> float:
        """Simulated seconds charged for operator ``name``."""
        return self.charges.get(name, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-operator seconds breakdown."""
        return dict(self.charges)

    def merge(self, other: "RuntimeLedger") -> None:
        """Fold another ledger's charges into this one."""
        for name, seconds in other.charges.items():
            self.charges[name] = self.charges.get(name, 0.0) + seconds
        for name, count in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + count

    def reset(self) -> None:
        """Discard all accumulated charges."""
        self.charges.clear()
        self.calls.clear()

    def snapshot(self) -> "RuntimeLedger":
        """Return an independent copy of the current state."""
        copy = RuntimeLedger()
        copy.charges = dict(self.charges)
        copy.calls = dict(self.calls)
        return copy
