"""Simulated runtime accounting.

The paper measures end-to-end runtime on a Tesla P100 and, for the most
detection-heavy experiments, *extrapolates* runtime from the number of object
detection calls (Sections 10.2 and 10.4).  This reproduction has no GPU, so we
adopt the same accounting model everywhere: every operator invocation charges
a deterministic cost (in simulated seconds) to a :class:`RuntimeLedger`.

The default per-operator throughputs are the ones the paper reports:

* Mask R-CNN object detection: ~3 fps
* FGFA object detection: ~3 fps (the paper groups it with Mask R-CNN)
* YOLOv2: ~80 fps
* specialized NNs: ~10,000 fps
* simple (non-NN) filters: ~100,000 fps

Only *relative* runtimes (speedup factors, crossover points) are meaningful.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (metrics must not import detection)
    from repro.detection.base import DetectionResult


@dataclass(frozen=True)
class OperatorCost:
    """Cost of a single operator invocation.

    Parameters
    ----------
    name:
        Operator identifier used for ledger break-downs (e.g. ``"mask_rcnn"``).
    seconds_per_call:
        Simulated seconds charged for each invocation.
    """

    name: str
    seconds_per_call: float

    @classmethod
    def from_fps(cls, name: str, fps: float) -> "OperatorCost":
        """Build a cost from a throughput expressed in frames per second."""
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        return cls(name=name, seconds_per_call=1.0 / fps)


class StandardCosts:
    """The operator throughputs reported by the paper (Section 5 and 9)."""

    MASK_RCNN = OperatorCost.from_fps("mask_rcnn", 3.0)
    FGFA = OperatorCost.from_fps("fgfa", 3.0)
    YOLOV2 = OperatorCost.from_fps("yolov2", 80.0)
    SPECIALIZED_NN = OperatorCost.from_fps("specialized_nn", 10_000.0)
    SPECIALIZED_NN_TRAIN = OperatorCost.from_fps("specialized_nn_train", 2_500.0)
    SIMPLE_FILTER = OperatorCost.from_fps("simple_filter", 100_000.0)
    VIDEO_DECODE = OperatorCost.from_fps("video_decode", 300.0)

    @classmethod
    def all_costs(cls) -> dict[str, OperatorCost]:
        """Return every standard cost keyed by operator name."""
        costs = {}
        for attr in dir(cls):
            value = getattr(cls, attr)
            if isinstance(value, OperatorCost):
                costs[value.name] = value
        return costs


@dataclass
class RuntimeLedger:
    """Accumulates simulated runtime, broken down by operator.

    The ledger is the single source of truth for "how long did this query
    take" in the reproduction.  Operators call :meth:`charge` once per frame
    they process; benchmark harnesses read :attr:`total_seconds` and
    :meth:`breakdown`.

    Mutation is thread-safe: :meth:`charge` / :meth:`charge_seconds` (and the
    detection-cache mutators of :class:`ExecutionLedger`) hold a per-ledger
    lock, so concurrent shard workers charging one shared ledger never lose
    counts.  Reads are plain attribute access — take a :meth:`snapshot` when
    a consistent multi-field view is needed while writers are live.
    """

    charges: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def charge(self, cost: OperatorCost, count: int = 1) -> float:
        """Charge ``count`` invocations of ``cost`` and return the seconds added."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        seconds = cost.seconds_per_call * count
        with self._lock:
            self.charges[cost.name] = self.charges.get(cost.name, 0.0) + seconds
            self.calls[cost.name] = self.calls.get(cost.name, 0) + count
        return seconds

    def charge_seconds(self, name: str, seconds: float) -> float:
        """Charge an arbitrary number of simulated seconds to an operator."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            self.charges[name] = self.charges.get(name, 0.0) + seconds
            self.calls[name] = self.calls.get(name, 0) + 1
        return seconds

    @property
    def total_seconds(self) -> float:
        """Total simulated runtime accumulated so far."""
        return sum(self.charges.values())

    def call_count(self, name: str) -> int:
        """Number of invocations charged for operator ``name``."""
        return self.calls.get(name, 0)

    def seconds_for(self, name: str) -> float:
        """Simulated seconds charged for operator ``name``."""
        return self.charges.get(name, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-operator seconds breakdown."""
        return dict(self.charges)

    def merge(self, other: "RuntimeLedger") -> None:
        """Fold another (quiescent) ledger's charges into this one."""
        with self._lock:
            for name, seconds in other.charges.items():
                self.charges[name] = self.charges.get(name, 0.0) + seconds
            for name, count in other.calls.items():
                self.calls[name] = self.calls.get(name, 0) + count

    def reset(self) -> None:
        """Discard all accumulated charges."""
        with self._lock:
            self.charges.clear()
            self.calls.clear()

    def restore_charges(
        self, charges: Mapping[str, Any], calls: Mapping[str, Any]
    ) -> None:
        """Overwrite the charge maps from a deserialized wire payload.

        The single sanctioned way for wire codecs to write these maps
        (RPR003): the store happens under the ledger lock so a ledger that
        is already visible to other threads cannot observe a torn update.
        """
        with self._lock:
            self.charges = {str(k): float(v) for k, v in charges.items()}
            self.calls = {str(k): int(v) for k, v in calls.items()}

    def snapshot(self) -> "RuntimeLedger":
        """Return an independent copy of the current state."""
        copy = RuntimeLedger()
        with self._lock:
            copy.charges = dict(self.charges)
            copy.calls = dict(self.calls)
        return copy


@dataclass
class ExecutionLedger(RuntimeLedger):
    """Per-execution ledger attached to every query result.

    Extends the simulated-runtime accounting with execution-level counters
    (detector invocations, frames decoded, events/batches emitted over the
    streaming protocol, wall-clock time) and a per-execution detection cache
    keyed by frame index.  The cache is what lets a plan revisit a frame —
    e.g. the scrubbing plan's exhaustive fallback sweeping frames already
    examined during the importance scan — without re-calling (or re-charging)
    the object detector.

    ``wall_seconds`` and the detection cache are excluded from equality so
    that a streamed execution and a blocking execution of the same plan under
    the same RNG stream compare equal field-for-field.
    """

    #: Object-detector invocations actually charged (cache misses only).
    detector_calls: int = 0
    #: Distinct frames decoded (one per charged detection).
    frames_decoded: int = 0
    #: Detections served from the per-execution cache instead of the detector
    #: (including frames first seeded into it from the shared cross-query
    #: cache, which are additionally counted in ``shared_cache_hits``).
    detection_cache_hits: int = 0
    #: Detections seeded from the process-wide shared cross-query cache —
    #: frames this execution never paid a detector call for.
    shared_cache_hits: int = 0
    #: Detections decoded from the persistent index's memory-mapped segments
    #: (exact persisted detector output; never charged).
    index_hits: int = 0
    #: Frames skipped entirely on range-sketch evidence — the index proved
    #: them irrelevant (empty range / class absent / min-count unsatisfiable)
    #: without decoding anything.
    index_skips: int = 0
    #: Incremental (non-terminal) events emitted over the streaming protocol.
    batches_emitted: int = 0
    #: All events emitted, including the terminal ``Completed``.
    events_emitted: int = 0
    #: Wall-clock seconds from the first event to the terminal one.
    wall_seconds: float = field(default=0.0, compare=False)
    _detections: "dict[int, DetectionResult]" = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def seen_frames(self) -> set[int]:
        """Frame indices whose detections this execution has already computed."""
        return set(self._detections)

    def cached_detection(self, frame_index: int) -> "DetectionResult | None":
        """The cached detection for a frame, or ``None`` if never computed."""
        return self._detections.get(frame_index)

    def record_detection(self, frame_index: int, result: "DetectionResult") -> None:
        """Note one charged detector invocation and cache its output."""
        with self._lock:
            if frame_index not in self._detections:
                self.frames_decoded += 1
            self._detections[frame_index] = result
            self.detector_calls += 1

    def record_cache_hit(self) -> None:
        """Note one detection served from the cache (nothing charged)."""
        with self._lock:
            self.detection_cache_hits += 1

    def stash_detection(self, frame_index: int, result: "DetectionResult") -> None:
        """Seed the per-execution cache with a detection computed elsewhere.

        Used when the shared cross-query cache serves a frame: the detection
        enters this execution's cache (so later repeats dedupe normally) but
        no detector call, decode, or charge is recorded.
        """
        with self._lock:
            self._detections.setdefault(frame_index, result)
            self.shared_cache_hits += 1

    def stash_index_detection(
        self, frame_index: int, result: "DetectionResult", skipped: bool = False
    ) -> None:
        """Seed the per-execution cache with a detection served by the index.

        Mirrors :meth:`stash_detection` for the persistent-index tier:
        ``skipped=True`` means the range sketch proved the frame empty and the
        result was synthesized without decoding a segment.
        """
        with self._lock:
            self._detections.setdefault(frame_index, result)
            if skipped:
                self.index_skips += 1
            else:
                self.index_hits += 1

    def record_index_skip(self, count: int = 1) -> None:
        """Note ``count`` frames skipped on sketch evidence alone (no decode)."""
        with self._lock:
            self.index_skips += count

    def release_cache(self) -> None:
        """Drop the per-frame detection cache, keeping every counter.

        Called when execution completes: the cache exists only for
        intra-execution dedupe, and results should not pin one
        ``DetectionResult`` per decoded frame for their whole lifetime.
        """
        with self._lock:
            self._detections.clear()

    def finalize_stream_accounting(
        self, events_emitted: int, batches_emitted: int, wall_seconds: float
    ) -> None:
        """Stamp end-of-stream counters and drop the detection cache.

        The single sanctioned way for stream drivers to write these
        counters (RPR003): the ledger may already be visible to other
        threads (shared caches, service snapshots), so the store happens
        under the ledger lock, together with the cache release.
        """
        with self._lock:
            self.events_emitted = events_emitted
            self.batches_emitted = batches_emitted
            self.wall_seconds = wall_seconds
            self._detections.clear()

    def set_wall_seconds(self, wall_seconds: float) -> None:
        """Overwrite the wall-clock figure with driver-observed time.

        The single sanctioned way for the parallel engine to correct
        ``wall_seconds`` (RPR003): ``timed_stream`` starts its clock when the
        inner stream first advances, which excludes executor construction —
        worker spawn in particular — so the driver re-stamps the figure with
        the elapsed time since ``parallel_events`` was entered.  Thread- and
        process-backend rows become directly comparable.  Wall time is
        display-only (``compare=False``; excluded from wire fingerprints), so
        the overwrite can never affect results.
        """
        if wall_seconds < 0:
            raise ValueError(f"wall_seconds must be non-negative, got {wall_seconds}")
        with self._lock:
            self.wall_seconds = wall_seconds

    def restore_execution_counters(self, payload: Mapping[str, Any]) -> None:
        """Overwrite the execution counters from a deserialized wire payload.

        The single sanctioned way for wire codecs to write these counters
        (RPR003), mirroring :meth:`RuntimeLedger.restore_charges`.  The index
        counters joined the wire format after protocol v1 first shipped, so
        they default to zero when absent from older payloads.
        """
        with self._lock:
            self.detector_calls = int(payload["detector_calls"])
            self.frames_decoded = int(payload["frames_decoded"])
            self.detection_cache_hits = int(payload["detection_cache_hits"])
            self.shared_cache_hits = int(payload["shared_cache_hits"])
            self.index_hits = int(payload.get("index_hits", 0))
            self.index_skips = int(payload.get("index_skips", 0))
            self.batches_emitted = int(payload["batches_emitted"])
            self.events_emitted = int(payload["events_emitted"])
            self.wall_seconds = float(payload["wall_seconds"])

    def merge(self, other: RuntimeLedger) -> None:
        """Fold another ledger's charges — and execution counters — into this one."""
        super().merge(other)
        if isinstance(other, ExecutionLedger):
            with self._lock:
                self.detector_calls += other.detector_calls
                self.frames_decoded += other.frames_decoded
                self.detection_cache_hits += other.detection_cache_hits
                self.shared_cache_hits += other.shared_cache_hits
                self.index_hits += other.index_hits
                self.index_skips += other.index_skips
                self.batches_emitted += other.batches_emitted
                self.events_emitted += other.events_emitted
                self.wall_seconds += other.wall_seconds

    def snapshot(self) -> "ExecutionLedger":
        """Return an independent copy, execution counters and cache included."""
        copy = ExecutionLedger()
        with self._lock:
            copy.charges = dict(self.charges)
            copy.calls = dict(self.calls)
            copy.detector_calls = self.detector_calls
            copy.frames_decoded = self.frames_decoded
            copy.detection_cache_hits = self.detection_cache_hits
            copy.shared_cache_hits = self.shared_cache_hits
            copy.index_hits = self.index_hits
            copy.index_skips = self.index_skips
            copy.batches_emitted = self.batches_emitted
            copy.events_emitted = self.events_emitted
            copy.wall_seconds = self.wall_seconds
            copy._detections = dict(self._detections)
        return copy
