"""Measurement substrate: simulated runtime accounting and accuracy metrics."""

from repro.metrics.runtime import OperatorCost, RuntimeLedger, StandardCosts
from repro.metrics.accuracy import (
    absolute_error,
    false_negative_rate,
    false_positive_rate,
    precision_recall,
)

__all__ = [
    "OperatorCost",
    "RuntimeLedger",
    "StandardCosts",
    "absolute_error",
    "false_negative_rate",
    "false_positive_rate",
    "precision_recall",
]
