"""Typed early-termination conditions for query execution.

This is a dependency-free leaf module: :class:`StopConditions` is shared by
the query-hint layer (:mod:`repro.api.hints`) and the streaming execution
protocol (:mod:`repro.core.events`), which sit on opposite sides of the
core/api package boundary.  Defining it here keeps both imports acyclic.
The canonical public import paths are ``repro.api`` and ``repro.core.events``.

:class:`CancellationToken` lives here for the same reason: it is the
thread-safe cancellation primitive shared by the per-execution
:class:`~repro.core.events.ExecutionControl` and the parallel shard executor
(:mod:`repro.parallel`), whose worker threads must observe a cancel request
(a ``LIMIT`` satisfied across shards, a closed stream) promptly without
importing either package.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConfigurationError


class CancellationToken:
    """A thread-safe, set-once cooperative cancellation flag.

    One token is shared by everything participating in one query execution:
    the :class:`~repro.core.events.ExecutionControl` the plan checks at batch
    boundaries, and — under parallel execution — every shard worker thread,
    which checks it between detection chunks.  Setting the token is
    irreversible; a cancelled execution always finalises a well-formed
    partial result.

    Observers (the query service's scheduler, for one) can register
    :meth:`on_set` callbacks to be notified the moment cancellation is
    requested, from whichever thread requested it — e.g. to wake a drainer
    that would otherwise only notice the flag at the next batch boundary.
    """

    __slots__ = ("_event", "_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list[Callable[[], None]] = []

    def set(self) -> None:
        """Request cancellation (idempotent, safe from any thread).

        Registered callbacks fire exactly once, on the first call, in
        registration order, on the calling thread.  A callback that raises
        does not prevent later callbacks from running — exceptions propagate
        to the caller only after every callback has fired.
        """
        with self._lock:
            if self._event.is_set():
                return
            self._event.set()
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        error: BaseException | None = None
        for callback in callbacks:
            try:
                callback()
            # Every callback must run even if one fails; the first error is
            # re-raised once the list is drained.
            except BaseException as exc:  # noqa: B036
                error = exc
        if error is not None:
            raise error

    def on_set(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run when the token is set.

        If the token is already set the callback runs immediately on the
        registering thread; otherwise it runs on whichever thread calls
        :meth:`set` first.  Each callback fires at most once.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback()

    def is_set(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the token is set, or the timeout elapses."""
        return self._event.wait(timeout)


@dataclass(frozen=True)
class StopConditions:
    """Typed early-termination conditions threaded through every plan.

    Parameters
    ----------
    limit:
        Stop scrubbing/selection executions after this many verified hits /
        matched windows, even if the query's own ``LIMIT`` is larger.
    ci_width:
        Stop aggregate sampling as soon as the CI half-width is at or below
        this value, even if the query's ``ERROR WITHIN`` bound is tighter.
    max_detector_calls:
        Hard budget on charged object-detector invocations for any plan;
        execution finalises a partial result once the budget is reached.
    """

    limit: int | None = None
    ci_width: float | None = None
    max_detector_calls: int | None = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError(f"stop limit must be >= 1, got {self.limit}")
        if self.ci_width is not None and self.ci_width <= 0:
            raise ConfigurationError(
                f"stop ci_width must be positive, got {self.ci_width}"
            )
        if self.max_detector_calls is not None and self.max_detector_calls < 1:
            raise ConfigurationError(
                f"stop max_detector_calls must be >= 1, got {self.max_detector_calls}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether no condition is set (execution runs to natural completion)."""
        return (
            self.limit is None
            and self.ci_width is None
            and self.max_detector_calls is None
        )

    def describe(self) -> str:
        """Compact human-readable form, used by hint/plan descriptions."""
        parts = []
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.ci_width is not None:
            parts.append(f"ci_width<={self.ci_width:g}")
        if self.max_detector_calls is not None:
            parts.append(f"max_detector_calls={self.max_detector_calls}")
        return ", ".join(parts) if parts else "none"


#: The stop-condition set meaning "run to completion".
NO_STOP = StopConditions()
