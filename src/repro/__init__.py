"""BlazeIt reproduction: declarative aggregation and limit queries over video.

This package reproduces the system described in "BlazeIt: Optimizing
Declarative Aggregation and Limit Queries for Neural Network-Based Video
Analytics" (VLDB 2019) on a synthetic video substrate: a FrameQL query
language, a rule-based optimizer, and the aggregation (control variates),
scrubbing (importance sampling) and content-based selection (filter inference)
optimizations.

Quick start::

    from repro import BlazeIt

    engine = BlazeIt()
    engine.register_scenario("taipei", num_frames=4000)
    result = engine.query(
        "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
        "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
    )
    print(result.value, result.method, result.runtime_seconds)
"""

from repro.core.config import AggregateMethod, BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.core.results import (
    AggregateResult,
    ExactResult,
    QueryResult,
    ScrubbingQueryResult,
    SelectionResult,
)
from repro.detection.simulated import SimulatedDetector
from repro.errors import BlazeItError, FrameQLAnalysisError, FrameQLSyntaxError
from repro.frameql.analyzer import analyze
from repro.frameql.parser import parse
from repro.metrics.runtime import RuntimeLedger, StandardCosts
from repro.video.scenarios import generate_scenario, list_scenarios
from repro.video.synthetic import SyntheticVideo

__version__ = "1.0.0"

__all__ = [
    "BlazeIt",
    "BlazeItConfig",
    "AggregateMethod",
    "LabeledSet",
    "RecordedDetections",
    "QueryResult",
    "AggregateResult",
    "ScrubbingQueryResult",
    "SelectionResult",
    "ExactResult",
    "SimulatedDetector",
    "SyntheticVideo",
    "generate_scenario",
    "list_scenarios",
    "parse",
    "analyze",
    "RuntimeLedger",
    "StandardCosts",
    "BlazeItError",
    "FrameQLSyntaxError",
    "FrameQLAnalysisError",
    "__version__",
]
