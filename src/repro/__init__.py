"""BlazeIt reproduction: declarative aggregation and limit queries over video.

This package reproduces the system described in "BlazeIt: Optimizing
Declarative Aggregation and Limit Queries for Neural Network-Based Video
Analytics" (VLDB 2019) on a synthetic video substrate: a FrameQL query
language, a rule-based optimizer, and the aggregation (control variates),
scrubbing (importance sampling) and content-based selection (filter inference)
optimizations.

Quick start (session API — prepare once, execute many)::

    from repro import BlazeIt, Q, FCOUNT

    engine = BlazeIt()
    engine.register_scenario("taipei", num_frames=4000)

    with engine.session() as session:
        prepared = session.prepare(
            Q.select(FCOUNT()).from_("taipei").where(cls="car")
            .error_within(0.1).confidence(0.95)
        )
        result = prepared.execute()
        print(result.value, result.method, result.runtime_seconds)
        print(prepared.explain().render())

Streaming execution (incremental results and early termination)::

    from repro import Completed, EstimateUpdate, StopConditions

    for event in session.stream(prepared.text, stop=StopConditions(ci_width=0.5)):
        if isinstance(event, EstimateUpdate):
            print(f"estimate={event.estimate:.2f} ± {event.half_width:.3f}")
        elif isinstance(event, Completed):
            print("final:", event.result.value)

One-shot queries still work (``engine.query(text)`` / ``engine.stream(text)``),
paying the full parse/plan cost per call.
"""

from repro.api import (
    AVG,
    COUNT,
    FCOUNT,
    NO_HINTS,
    NO_STOP,
    Q,
    SUM,
    Completed,
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    ExecutionStream,
    OperatorNode,
    PlanExplanation,
    PreparedQuery,
    Progress,
    QueryBuilder,
    QueryHints,
    QuerySession,
    ScrubbingHit,
    SelectionWindow,
    SessionStats,
    ShardProgress,
    StopConditions,
    area,
    class_is,
    col,
    fn,
    lit,
    star,
    udf,
    xmax,
    xmin,
    ymax,
    ymin,
)
from repro.core.config import AggregateMethod, BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.core.results import (
    AggregateResult,
    ExactResult,
    QueryResult,
    ScrubbingQueryResult,
    SelectionResult,
)
from repro.detection.simulated import SimulatedDetector
from repro.errors import (
    BlazeItError,
    FrameQLAnalysisError,
    FrameQLSyntaxError,
    QueryParameterError,
)
from repro.frameql.analyzer import analyze
from repro.frameql.parser import parse
from repro.metrics.runtime import ExecutionLedger, RuntimeLedger, StandardCosts
from repro.parallel.cache import SharedDetectionCache
from repro.video.scenarios import generate_scenario, list_scenarios
from repro.video.synthetic import SyntheticVideo

__version__ = "1.2.0"

__all__ = [
    "BlazeIt",
    "BlazeItConfig",
    "AggregateMethod",
    "QuerySession",
    "PreparedQuery",
    "SessionStats",
    "QueryBuilder",
    "Q",
    "QueryHints",
    "NO_HINTS",
    "StopConditions",
    "NO_STOP",
    "ExecutionStream",
    "ExecutionControl",
    "ExecutionEvent",
    "ExecutionLedger",
    "Progress",
    "EstimateUpdate",
    "ShardProgress",
    "SharedDetectionCache",
    "ScrubbingHit",
    "SelectionWindow",
    "Completed",
    "PlanExplanation",
    "OperatorNode",
    "FCOUNT",
    "COUNT",
    "SUM",
    "AVG",
    "col",
    "lit",
    "fn",
    "star",
    "udf",
    "area",
    "class_is",
    "xmin",
    "xmax",
    "ymin",
    "ymax",
    "LabeledSet",
    "RecordedDetections",
    "QueryResult",
    "AggregateResult",
    "ScrubbingQueryResult",
    "SelectionResult",
    "ExactResult",
    "SimulatedDetector",
    "SyntheticVideo",
    "generate_scenario",
    "list_scenarios",
    "parse",
    "analyze",
    "RuntimeLedger",
    "StandardCosts",
    "BlazeItError",
    "FrameQLSyntaxError",
    "FrameQLAnalysisError",
    "QueryParameterError",
    "__version__",
]
