"""Exception hierarchy for the BlazeIt reproduction.

Every error raised by the library derives from :class:`BlazeItError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class BlazeItError(Exception):
    """Base class for all errors raised by this library."""


class FrameQLSyntaxError(BlazeItError):
    """Raised when a FrameQL query cannot be tokenized or parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset into the query text where the problem was detected,
        or ``None`` when the position is unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class FrameQLAnalysisError(BlazeItError):
    """Raised when a syntactically valid query is semantically invalid.

    Examples include referencing an unknown column, applying ``GAP`` without
    ``LIMIT``, or using an unregistered UDF.
    """


class UnknownVideoError(BlazeItError):
    """Raised when a query references a video that has not been registered."""


class UnknownUDFError(BlazeItError):
    """Raised when a query references a UDF that is not in the registry."""


class InsufficientTrainingDataError(BlazeItError):
    """Raised when a specialized model cannot be trained.

    The paper requires "sufficient training data" before specialization is
    attempted (Section 6); when there is not enough, the engine falls back to
    traditional AQP rather than raising, but lower-level training APIs raise
    this error so the decision is explicit.
    """


class PlanningError(BlazeItError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(BlazeItError):
    """Raised when a physical plan fails during execution."""


class SpawnExportError(BlazeItError):
    """Raised when an execution context cannot be exported to worker processes.

    The process shard backend rebuilds each worker's context from a picklable
    spec; a detector that will not pickle, or a context bound to driver-only
    state (e.g. a recorded test day), cannot cross the process boundary.
    Routing catches this and falls back to the thread backend.
    """


class BudgetExceededError(BlazeItError):
    """Raised when an execution exceeds a user-supplied detection budget."""


class ConfigurationError(BlazeItError):
    """Raised when a configuration object contains invalid values."""


class QueryParameterError(BlazeItError):
    """Raised when a prepared query is executed with invalid parameters.

    Prepared queries accept only the runtime parameters their query class can
    re-bind without re-planning (e.g. ``error_within`` for aggregates,
    ``limit``/``gap`` for scrubbing); anything else raises this error.
    """
