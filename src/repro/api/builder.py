"""Fluent FrameQL query builder.

The builder composes the FrameQL AST directly — no lexing or parsing — and is
guaranteed to produce exactly the tree :func:`repro.frameql.parser.parse`
would produce for the equivalent query text (the test suite asserts this for
every query class).  Clause methods return a new builder, so partial queries
can be shared and specialised without aliasing surprises::

    from repro.api import Q, FCOUNT, class_is, udf, area

    query = (
        Q.select(FCOUNT())
        .from_("taipei")
        .where(cls="car")
        .error_within(0.1)
        .confidence(0.95)
    )

    red_buses = (
        Q.select("*")
        .from_("taipei")
        .where(class_is("bus"), udf("redness") >= 17.5, area() > 100000)
        .group_by("trackid")
        .having(COUNT() > 15)
    )

Expressions lean on the operator overloads of
:class:`~repro.frameql.ast.Expression` (``>=``, ``>``, ``&``, ...); FrameQL
equality is spelled ``.eq()`` because ``==`` keeps its structural meaning.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

from repro.errors import FrameQLAnalysisError
from repro.frameql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    Query,
    SelectItem,
    Star,
)

# -- expression helpers ---------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """A reference to a FrameQL schema column."""
    return ColumnRef(name)


def lit(value: float | int | str) -> Literal:
    """A literal value."""
    return Literal(value)


def fn(name: str, *args: Expression, distinct: bool = False) -> FunctionCall:
    """A function or aggregate call over already-built expressions."""
    return FunctionCall(name, tuple(args), distinct=distinct)


def star() -> Star:
    """The ``*`` wildcard."""
    return Star()


def FCOUNT() -> FunctionCall:
    """``FCOUNT(*)``: the frame-averaged count (Table 2)."""
    return FunctionCall("FCOUNT", (Star(),))


def COUNT(arg: Expression | str | None = None, distinct: bool = False) -> FunctionCall:
    """``COUNT(*)`` / ``COUNT(column)`` / ``COUNT(DISTINCT column)``."""
    if arg is None:
        expression: Expression = Star()
    elif isinstance(arg, str):
        expression = Star() if arg == "*" else ColumnRef(arg)
    else:
        expression = arg
    return FunctionCall("COUNT", (expression,), distinct=distinct)


def SUM(arg: Expression) -> FunctionCall:
    """``SUM(expr)``, e.g. ``SUM(class_is('bus'))`` for scrubbing HAVING."""
    return FunctionCall("SUM", (arg,))


def AVG(arg: Expression | str) -> FunctionCall:
    """``AVG(column)``."""
    return FunctionCall("AVG", (ColumnRef(arg) if isinstance(arg, str) else arg,))


def class_is(name: str) -> BinaryOp:
    """The ``class = '<name>'`` predicate."""
    return BinaryOp("=", ColumnRef("class"), Literal(name))


def udf(name: str, column: str = "content") -> FunctionCall:
    """A UDF applied to a column, ready for comparison: ``udf('redness') >= 17.5``."""
    return FunctionCall(name, (ColumnRef(column),))


def area(column: str = "mask") -> FunctionCall:
    """The mask-area function: ``area() > 100000``."""
    return FunctionCall("area", (ColumnRef(column),))


def _spatial(axis: str):
    def make(column: str = "mask") -> FunctionCall:
        return FunctionCall(axis, (ColumnRef(column),))

    make.__name__ = axis
    make.__doc__ = f"The ``{axis}(mask)`` spatial extent function."
    return make


xmin = _spatial("xmin")
xmax = _spatial("xmax")
ymin = _spatial("ymin")
ymax = _spatial("ymax")

#: Python-friendly spellings for columns whose FrameQL names collide with
#: Python keywords (``where(cls="car")`` means ``WHERE class = 'car'``).
_KWARG_COLUMNS = {"cls": "class", "class_": "class"}


def _select_item(item: Expression | SelectItem | str) -> SelectItem:
    if isinstance(item, SelectItem):
        return item
    if isinstance(item, str):
        return SelectItem(Star() if item == "*" else ColumnRef(item))
    if isinstance(item, Expression):
        return SelectItem(item)
    raise FrameQLAnalysisError(f"cannot select {item!r}; expected an expression")


def _conjoin(conjuncts: tuple[Expression, ...]) -> Expression | None:
    """Fold conjuncts left-associatively, matching the parser's AND tree."""
    if not conjuncts:
        return None
    return functools.reduce(lambda left, right: BinaryOp("AND", left, right), conjuncts)


# -- the builder ---------------------------------------------------------------------


@dataclass(frozen=True)
class QueryBuilder:
    """An immutable, fluent FrameQL query under construction.

    Every clause method returns a *new* builder; :meth:`build` compiles the
    accumulated clauses to a :class:`~repro.frameql.ast.Query`.  Builders can
    be passed anywhere the session API accepts query text.
    """

    _select: tuple[SelectItem, ...] = ()
    _video: str = ""
    _where: tuple[Expression, ...] = ()
    _group_by: tuple[ColumnRef, ...] = ()
    _having: tuple[Expression, ...] = ()
    _error_within: float | None = None
    _fpr_within: float | None = None
    _fnr_within: float | None = None
    _confidence: float | None = None
    _limit: int | None = None
    _gap: int | None = None

    # -- clauses ------------------------------------------------------------------

    def select(self, *items: Expression | SelectItem | str) -> QueryBuilder:
        """Add items to the SELECT list (``"*"``, column names or expressions)."""
        if not items:
            raise FrameQLAnalysisError("select() needs at least one item")
        return replace(
            self, _select=self._select + tuple(_select_item(i) for i in items)
        )

    def from_(self, video: str) -> QueryBuilder:
        """Set the video the query runs over."""
        return replace(self, _video=video)

    def where(self, *predicates: Expression, **equalities: float | int | str) -> QueryBuilder:
        """AND one or more predicates into the WHERE clause.

        Positional arguments are expression predicates; keyword arguments are
        column equalities (``cls="car"`` spells ``class = 'car'``).
        """
        conjuncts = list(predicates)
        for column, value in equalities.items():
            column = _KWARG_COLUMNS.get(column, column)
            conjuncts.append(BinaryOp("=", ColumnRef(column), Literal(value)))
        if not conjuncts:
            raise FrameQLAnalysisError("where() needs at least one predicate")
        return replace(self, _where=self._where + tuple(conjuncts))

    def group_by(self, *columns: ColumnRef | str) -> QueryBuilder:
        """Add GROUP BY columns."""
        refs = tuple(ColumnRef(c) if isinstance(c, str) else c for c in columns)
        return replace(self, _group_by=self._group_by + refs)

    def having(self, *predicates: Expression) -> QueryBuilder:
        """AND one or more predicates into the HAVING clause."""
        if not predicates:
            raise FrameQLAnalysisError("having() needs at least one predicate")
        return replace(self, _having=self._having + tuple(predicates))

    def error_within(self, tolerance: float) -> QueryBuilder:
        """Set the ``ERROR WITHIN`` absolute error tolerance."""
        return replace(self, _error_within=float(tolerance))

    def fpr_within(self, rate: float) -> QueryBuilder:
        """Set the ``FPR WITHIN`` false-positive-rate bound."""
        return replace(self, _fpr_within=float(rate))

    def fnr_within(self, rate: float) -> QueryBuilder:
        """Set the ``FNR WITHIN`` false-negative-rate bound."""
        return replace(self, _fnr_within=float(rate))

    def confidence(self, level: float) -> QueryBuilder:
        """Set the confidence level (``0.95`` and ``95`` both mean 95%)."""
        value = float(level)
        if value > 1.0:
            value /= 100.0
        if not 0.0 < value < 1.0:
            raise FrameQLAnalysisError(
                f"confidence must be in (0, 1) (or (0, 100) as a percentage), "
                f"got {level!r}"
            )
        return replace(self, _confidence=value)

    def limit(self, count: int) -> QueryBuilder:
        """Set the ``LIMIT`` result cardinality."""
        return replace(self, _limit=int(count))

    def gap(self, frames: int) -> QueryBuilder:
        """Set the ``GAP`` minimum frame distance between results."""
        return replace(self, _gap=int(frames))

    # -- compilation --------------------------------------------------------------

    def build(self) -> Query:
        """Compile to the FrameQL AST (identical to parsing the query text)."""
        if not self._select:
            raise FrameQLAnalysisError("query selects nothing; call select() first")
        if not self._video:
            raise FrameQLAnalysisError("query has no FROM video; call from_() first")
        return Query(
            select=list(self._select),
            video=self._video,
            where=_conjoin(self._where),
            group_by=list(self._group_by),
            having=_conjoin(self._having),
            error_within=self._error_within,
            fpr_within=self._fpr_within,
            fnr_within=self._fnr_within,
            confidence=self._confidence,
            limit=self._limit,
            gap=self._gap,
        )

    def __str__(self) -> str:
        return str(self.build())


class Q:
    """Entry point for the fluent builder: ``Q.select(...)``, ``Q.from_(...)``."""

    @staticmethod
    def select(*items: Expression | SelectItem | str) -> QueryBuilder:
        return QueryBuilder().select(*items)

    @staticmethod
    def from_(video: str) -> QueryBuilder:
        return QueryBuilder().from_(video)
