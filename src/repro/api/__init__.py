"""The session-based public query API.

This package is the DB-style client surface of the engine:

* :class:`~repro.api.session.QuerySession` — prepare once / execute many,
  with a per-session execution-context cache and independent per-execution
  RNG streams (``engine.session()``);
* :class:`~repro.api.session.PreparedQuery` — a parsed/analyzed/planned query
  with ``execute(**params)``, ``execute_many(param_sets)``, a lazy
  ``stream()`` of typed execution events and a structured ``explain()``;
* :class:`~repro.core.events.ExecutionStream` and the
  :class:`~repro.core.events.ExecutionEvent` types (``Progress``,
  ``EstimateUpdate``, ``ScrubbingHit``, ``SelectionWindow``, ``Completed``)
  — the streaming execution protocol: incremental results, progress events
  and early termination (``StopConditions``, ``stream.cancel()``);
* :class:`~repro.api.builder.QueryBuilder` / :class:`~repro.api.builder.Q` —
  a fluent builder that compiles to the FrameQL AST directly, bypassing the
  lexer and parser;
* :class:`~repro.api.hints.QueryHints` — typed optimizer hints replacing the
  historical loose keyword arguments.
"""

from repro.api.builder import (
    AVG,
    COUNT,
    FCOUNT,
    Q,
    SUM,
    QueryBuilder,
    area,
    class_is,
    col,
    fn,
    lit,
    star,
    udf,
    xmax,
    xmin,
    ymax,
    ymin,
)
from repro.api.hints import (
    NO_HINTS,
    NO_STOP,
    VALID_FILTER_CLASSES,
    QueryHints,
    StopConditions,
)
from repro.api.session import PreparedQuery, QuerySession, SessionStats
from repro.core.events import (
    Completed,
    EstimateUpdate,
    ExecutionControl,
    ExecutionEvent,
    ExecutionStream,
    Progress,
    ScrubbingHit,
    SelectionWindow,
    ShardProgress,
)
from repro.core.results import OperatorNode, PlanExplanation
from repro.metrics.runtime import ExecutionLedger

__all__ = [
    "QuerySession",
    "PreparedQuery",
    "SessionStats",
    "QueryBuilder",
    "Q",
    "QueryHints",
    "NO_HINTS",
    "VALID_FILTER_CLASSES",
    "StopConditions",
    "NO_STOP",
    "ExecutionStream",
    "ExecutionControl",
    "ExecutionEvent",
    "ExecutionLedger",
    "Progress",
    "EstimateUpdate",
    "ScrubbingHit",
    "SelectionWindow",
    "ShardProgress",
    "Completed",
    "PlanExplanation",
    "OperatorNode",
    "FCOUNT",
    "COUNT",
    "SUM",
    "AVG",
    "col",
    "lit",
    "fn",
    "star",
    "udf",
    "area",
    "class_is",
    "xmin",
    "xmax",
    "ymin",
    "ymax",
]
