"""Typed execution hints for FrameQL queries.

``QueryHints`` replaces the loose ``scrubbing_indexed`` /
``selection_filter_classes`` keyword arguments that used to leak through
``BlazeIt.query``: a single frozen dataclass travels from the public API
through the optimizer into the chosen physical plan, so every layer sees the
same, validated hint set and new hints need only be added in one place.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.stopping import NO_STOP, StopConditions

__all__ = [
    "QueryHints",
    "NO_HINTS",
    "StopConditions",
    "NO_STOP",
    "VALID_BACKENDS",
    "VALID_FILTER_CLASSES",
    "require_hints",
]

#: Filter classes a selection plan knows how to infer (Section 8).
VALID_FILTER_CLASSES = frozenset({"spatial", "temporal", "content", "label"})

#: Worker substrates the parallel engine offers (see ``QueryHints.backend``).
VALID_BACKENDS = frozenset({"threads", "processes"})


@dataclass(frozen=True)
class QueryHints:
    """Optimizer hints attached to a prepared query.

    Parameters
    ----------
    scrubbing_indexed:
        Execute scrubbing queries in the pre-indexed mode: the specialized
        NN's training and inference are assumed already paid for (for example
        by a previous aggregate query over the same video), so neither is
        charged to this query.  Reproduces the "BlazeIt (indexed)" variant of
        Figure 6.
    selection_filter_classes:
        Restrict selection plans to a subset of filter classes (any of
        ``"spatial"``, ``"temporal"``, ``"content"``, ``"label"``).  ``None``
        (the default) lets the optimizer infer every applicable filter; an
        empty set disables filtering entirely.  Used by the factor-analysis
        and lesion-study benchmarks of Figure 11.
    stop_conditions:
        Default :class:`~repro.core.events.StopConditions` applied to every
        execution of queries prepared with these hints (``limit`` for
        scrubbing/selection, ``ci_width`` / ``max_detector_calls`` for
        aggregates and scans).  An explicit ``stop=`` argument to
        ``stream()``/``execute()`` overrides them per execution.
    batch_size:
        Chunk size of the vectorized execution pipeline: how many candidate
        frames a plan pulls (and scores / verifies with one batched call)
        between control checks and progress events.  ``None`` uses the
        engine default (:data:`~repro.core.events.DEFAULT_BATCH_SIZE`).
        Results are identical for every batch size; chunking only affects
        how eagerly early-stop conditions are honoured (see the README's
        "Performance" notes).  An explicit ``batch_size=`` argument to
        ``stream()`` overrides it per execution.
    parallelism:
        Worker count for the parallel sharded execution engine: the video is
        partitioned into up to this many contiguous shards, each prefetched
        by its own worker thread while the plan streams on the driver.
        ``None`` (the default) falls back to the engine configuration's
        ``parallelism``; ``1`` forces the classic single-threaded path.
        Results — ledger accounting included — are bit-for-bit identical at
        every setting under a fixed RNG stream; parallelism only changes
        wall-clock time.
    backend:
        Restrict the parallel engine to one worker substrate: ``"threads"``
        (shared-memory prefetch workers, right whenever the detector releases
        the GIL during its latency) or ``"processes"`` (spawned workers with
        shared-memory columnar transport, right for GIL-bound detectors).
        ``None`` (the default) lets the optimizer's parallelism model pick —
        or threads, wherever the model is not consulted.  The hint does not
        itself enable parallelism; it shapes what routed or explicit
        parallelism runs on.  Results are backend-independent, bit for bit.
    force_plan:
        Bypass cost-based selection and pick the named physical candidate
        outright (the escape hatch for benchmarks and expert users).
        Candidate names per query class: aggregates with an error tolerance
        offer ``"auto"``, ``"exact"``, ``"naive_aqp"`` and — given enough
        training data — ``"specialized_rewrite"`` / ``"control_variates"``;
        scrubbing offers ``"importance"`` / ``"exhaustive"``; selection
        offers ``"filtered"`` / ``"exhaustive"``; everything else only
        ``"exhaustive"``.  Naming an ineligible candidate raises
        :class:`~repro.errors.PlanningError` at plan time.
    use_index:
        Whether the persistent ingest-time index (see ``BlazeIt(index_dir=
        ...)``) may serve this query's detections.  ``None`` (the default)
        uses the index whenever the engine has one committed for the video;
        ``False`` detaches it for this query — detections are recomputed
        (or cache-served) and the optimizer prices candidates without the
        index — the A/B knob for benchmarks and debugging.  ``True`` states
        intent explicitly but adds nothing over the default: a missing index
        is never an error, the query just runs index-less.  Results are
        identical either way; the index only changes where detections come
        from.
    trace:
        Span tracing for executions of this prepared query.  ``True`` enables
        the tracer (spans for parse/optimize/execute/per-operator/per-shard
        workers; the terminal result carries an
        :class:`~repro.obs.profile.ExecutionProfile`); ``False`` disables it
        even when the engine configuration's ``tracing`` default is on;
        ``None`` (the default) follows the engine configuration.  A per-call
        ``execute(analyze=True)`` always traces.  Tracing never changes
        results — spans record wall time for display only.
    """

    scrubbing_indexed: bool = False
    selection_filter_classes: frozenset[str] | None = None
    stop_conditions: StopConditions | None = None
    batch_size: int | None = None
    parallelism: int | None = None
    backend: str | None = None
    force_plan: str | None = None
    use_index: bool | None = None
    trace: bool | None = None

    def __post_init__(self) -> None:
        if self.stop_conditions is not None and not isinstance(
            self.stop_conditions, StopConditions
        ):
            raise ConfigurationError(
                "stop_conditions must be a StopConditions instance or None, "
                f"got {self.stop_conditions!r}"
            )
        if self.batch_size is not None and (
            not isinstance(self.batch_size, int) or self.batch_size < 1
        ):
            raise ConfigurationError(
                f"batch_size must be a positive integer or None, got "
                f"{self.batch_size!r}"
            )
        if self.parallelism is not None and (
            not isinstance(self.parallelism, int) or self.parallelism < 1
        ):
            raise ConfigurationError(
                f"parallelism must be a positive integer or None, got "
                f"{self.parallelism!r}"
            )
        if self.backend is not None and self.backend not in VALID_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {sorted(VALID_BACKENDS)} or None, got "
                f"{self.backend!r}"
            )
        if self.force_plan is not None and (
            not isinstance(self.force_plan, str) or not self.force_plan
        ):
            raise ConfigurationError(
                f"force_plan must be a non-empty candidate name or None, got "
                f"{self.force_plan!r}"
            )
        if self.use_index is not None and not isinstance(self.use_index, bool):
            raise ConfigurationError(
                f"use_index must be True, False or None, got {self.use_index!r}"
            )
        if self.trace is not None and not isinstance(self.trace, bool):
            raise ConfigurationError(
                f"trace must be True, False or None, got {self.trace!r}"
            )
        classes = self.selection_filter_classes
        if classes is not None:
            if isinstance(classes, str) or not isinstance(classes, Iterable):
                raise ConfigurationError(
                    "selection_filter_classes must be an iterable of filter-class "
                    f"names or None, got {classes!r}"
                )
            normalized = frozenset(classes)
            unknown = normalized - VALID_FILTER_CLASSES
            if unknown:
                raise ConfigurationError(
                    f"unknown selection filter classes {sorted(unknown)}; valid "
                    f"classes are {sorted(VALID_FILTER_CLASSES)}"
                )
            object.__setattr__(self, "selection_filter_classes", normalized)

    @property
    def enabled_filter_classes(self) -> set[str] | None:
        """The filter-class restriction in the form the selection plan expects."""
        if self.selection_filter_classes is None:
            return None
        return set(self.selection_filter_classes)

    def describe(self) -> str:
        """Compact human-readable form, used by plan explanations."""
        parts = []
        if self.scrubbing_indexed:
            parts.append("scrubbing_indexed")
        if self.selection_filter_classes is not None:
            parts.append(
                "selection_filter_classes="
                f"{{{', '.join(sorted(self.selection_filter_classes))}}}"
            )
        if self.stop_conditions is not None and not self.stop_conditions.is_noop:
            parts.append(f"stop({self.stop_conditions.describe()})")
        if self.batch_size is not None:
            parts.append(f"batch_size={self.batch_size}")
        if self.parallelism is not None:
            parts.append(f"parallelism={self.parallelism}")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.force_plan is not None:
            parts.append(f"force_plan={self.force_plan}")
        if self.use_index is not None:
            parts.append(f"use_index={self.use_index}")
        if self.trace is not None:
            parts.append(f"trace={self.trace}")
        return ", ".join(parts) if parts else "none"


#: The hint set meaning "no hints": shared default for every layer.
NO_HINTS = QueryHints()


def require_hints(hints: object) -> QueryHints | None:
    """Check that ``hints`` is a :class:`QueryHints` (or ``None``).

    Catches legacy positional calls such as ``plan(spec, True)`` (whose
    second parameter used to be ``scrubbing_indexed``) with a pointed error
    instead of a confusing failure deep inside plan construction.
    """
    if hints is None or isinstance(hints, QueryHints):
        return hints
    raise TypeError(
        f"hints must be a QueryHints instance or None, got {hints!r}; the old "
        "positional scrubbing_indexed/selection_filter_classes arguments were "
        "removed — pass hints=QueryHints(...) instead"
    )
