"""Session-based query API: prepare once, execute many.

A :class:`QuerySession` is the DB-style client surface of the engine.  It
owns three things a one-shot ``BlazeIt.query()`` call cannot amortize:

* a cache of :class:`~repro.core.context.ExecutionContext` objects (one per
  video), so per-video state such as the cheap-feature matrix is computed
  once per session rather than once per query;
* a cache of :class:`PreparedQuery` objects keyed by query text and hints,
  so repeated ``session.execute`` calls parse, analyze and plan exactly once;
* a per-session :class:`numpy.random.SeedSequence` from which every execution
  draws a fresh, independent RNG stream — repeated approximate queries see
  different samples, while a fixed engine seed keeps whole runs reproducible.

Typical use::

    with engine.session() as session:
        prepared = session.prepare(
            Q.select(FCOUNT()).from_("taipei").where(cls="car").error_within(0.1)
        )
        results = prepared.execute_many([{}, {"error_within": 0.05}])
        print(prepared.explain().render())
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.builder import QueryBuilder
from repro.api.hints import QueryHints, StopConditions, require_hints
from repro.core.events import (
    DEFAULT_BATCH_SIZE,
    Completed,
    ExecutionControl,
    ExecutionEvent,
    ExecutionStream,
)
from repro.core.results import PlanExplanation, QueryResult
from repro.obs.metrics import record_execution_ledger
from repro.obs.profile import ExecutionProfile, build_profile
from repro.obs.trace import Tracer, maybe_span
from repro.errors import ConfigurationError, QueryParameterError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
    analyze,
)
from repro.frameql.ast import Query
from repro.frameql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.catalog.statistics import VideoStatistics
    from repro.core.context import ExecutionContext
    from repro.core.engine import BlazeIt
    from repro.optimizer.base import PhysicalPlan
    from repro.optimizer.cost import ParallelismDecision

def _positive_float(name: str, value: Any) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise QueryParameterError(f"{name} must be a number, got {value!r}") from None
    if result <= 0:
        raise QueryParameterError(f"{name} must be positive, got {value!r}")
    return result


def _confidence(name: str, value: Any) -> float:
    result = _positive_float(name, value)
    if result > 1.0:  # accept 95 as 95%, matching the builder
        result /= 100.0
    if not 0.0 < result < 1.0:
        raise QueryParameterError(
            f"{name} must be in (0, 1) (or (0, 100) as a percentage), got {value!r}"
        )
    return result


def _rate(name: str, value: Any) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise QueryParameterError(f"{name} must be a number, got {value!r}") from None
    if not 0.0 <= result < 1.0:
        raise QueryParameterError(f"{name} must be in [0, 1), got {value!r}")
    return result


def _int_at_least(minimum: int):
    def validate(name: str, value: Any) -> int:
        try:
            result = int(value)
        except (TypeError, ValueError):
            raise QueryParameterError(
                f"{name} must be an integer, got {value!r}"
            ) from None
        if result < minimum:
            raise QueryParameterError(f"{name} must be >= {minimum}, got {value!r}")
        return result

    return validate


#: Runtime parameters each query class can re-bind without re-planning,
#: mapped to (spec attribute, value validator).  Validation mirrors what the
#: parser/builder and plan constructors enforce at plan time, so rebinding
#: cannot smuggle in values planning would have rejected.
_BINDABLE_PARAMS: dict[type, dict[str, tuple[str, Any]]] = {
    AggregateQuerySpec: {
        "error_within": ("error_tolerance", _positive_float),
        "confidence": ("confidence", _confidence),
    },
    ScrubbingQuerySpec: {
        "limit": ("limit", _int_at_least(1)),
        "gap": ("gap", _int_at_least(0)),
    },
    SelectionQuerySpec: {
        "fnr_within": ("fnr_within", _rate),
        "fpr_within": ("fpr_within", _rate),
    },
}


@dataclass
class SessionStats:
    """Counters exposing how much work the session has amortized."""

    parses: int = 0
    plans: int = 0
    executions: int = 0
    streams: int = 0
    prepared_cache_hits: int = 0


class PreparedQuery:
    """A query that has been parsed, analyzed and planned exactly once.

    Holds the analyzed :class:`~repro.frameql.analyzer.QuerySpec` and the
    chosen physical plan; every :meth:`execute` call reuses both, paying only
    execution cost.  Runtime parameters that do not change the plan structure
    (``error_within``/``confidence`` for aggregates, ``limit``/``gap`` for
    scrubbing, ``fnr_within``/``fpr_within`` for selection) can be re-bound
    per execution.
    """

    def __init__(
        self,
        session: QuerySession,
        text: str,
        spec: QuerySpec,
        plan: PhysicalPlan,
        hints: QueryHints,
        parse_seconds: float = 0.0,
        optimize_seconds: float = 0.0,
    ) -> None:
        self._session = session
        self.text = text
        self.spec = spec
        self.plan = plan
        self.hints = hints
        #: Prepare-time wall durations, replayed as synthetic ``parse`` /
        #: ``optimize`` spans into every traced execution (display only).
        self._parse_seconds = parse_seconds
        self._optimize_seconds = optimize_seconds

    def __repr__(self) -> str:
        return f"PreparedQuery({self.text!r}, plan={self.plan.describe()})"

    # -- parameter binding ---------------------------------------------------------

    @contextlib.contextmanager
    def _bound(self, params: Mapping[str, Any]):
        """Temporarily re-bind runtime parameters onto the analyzed spec."""
        allowed = _BINDABLE_PARAMS.get(type(self.spec), {})
        unknown = set(params) - set(allowed)
        if unknown:
            raise QueryParameterError(
                f"{self.spec.kind.value} queries cannot bind "
                f"{sorted(unknown)}; bindable parameters: {sorted(allowed) or 'none'}"
            )
        validated = {
            allowed[name][0]: allowed[name][1](name, value)
            for name, value in params.items()
        }
        saved = {attribute: getattr(self.spec, attribute) for attribute in validated}
        for attribute, value in validated.items():
            setattr(self.spec, attribute, value)
        try:
            yield
        finally:
            for attribute, value in saved.items():
                setattr(self.spec, attribute, value)

    # -- execution ----------------------------------------------------------------

    def stream(
        self,
        rng: np.random.Generator | None = None,
        stop: StopConditions | None = None,
        batch_size: int | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        trace: bool | None = None,
        analyze: bool = False,
        **params: Any,
    ) -> ExecutionStream:
        """Run the prepared plan as a lazy stream of typed execution events.

        The returned :class:`~repro.core.events.ExecutionStream` yields
        ``Progress`` / ``EstimateUpdate`` / ``ScrubbingHit`` /
        ``SelectionWindow`` events as the plan works, terminated by a single
        ``Completed`` carrying the full :class:`QueryResult`.  ``stop``
        attaches :class:`~repro.api.hints.StopConditions` for this execution
        (falling back to the hints' default conditions), ``batch_size``
        overrides the pipeline chunk size (falling back to the hints'
        ``batch_size``, then the engine default), ``stream.cancel()``
        requests cooperative cancellation, and runtime parameters re-bind
        exactly as with :meth:`execute`.

        ``parallelism`` routes execution through the parallel sharded engine
        (falling back to the hints' ``parallelism``, then the engine
        configuration): the video is partitioned into shards, one prefetch
        worker per shard, with :class:`~repro.core.events.ShardProgress`
        events interleaved into the stream.  ``backend`` picks the worker
        substrate (``"threads"`` or ``"processes"``, falling back to the
        hints' ``backend``, then the optimizer's choice or threads).  Results
        are bit-for-bit identical at every parallelism and backend under a
        fixed RNG stream.

        ``trace`` enables span tracing for this execution (``None`` follows
        the hints' ``trace``, then the engine configuration's ``tracing``);
        ``analyze=True`` forces tracing and is the streaming form of EXPLAIN
        ANALYZE — the terminal ``Completed`` result carries an
        :class:`~repro.obs.profile.ExecutionProfile`.  Tracing never changes
        results: span wall times are display-only.

        The plan does no work until the stream is iterated; interleaving two
        live streams of the same prepared query is not supported (they share
        the analyzed spec and, sequentially, the context's RNG binding).
        """
        self._session.stats.streams += 1
        return self._open_stream(
            rng, stop, batch_size, params, parallelism, backend, trace, analyze
        )

    def _effective_parallelism(self, parallelism: int | None) -> int:
        if parallelism is not None:
            if not isinstance(parallelism, int) or parallelism < 1:
                raise ConfigurationError(
                    f"parallelism must be a positive integer or None, got "
                    f"{parallelism!r}"
                )
            return parallelism
        if self.hints.parallelism is not None:
            return self.hints.parallelism
        return self._session.engine.config.parallelism

    def _parallelism_decision(
        self,
        context: ExecutionContext,
        stats: "VideoStatistics",
        requested: int,
        batch_size: int,
        backend_constraint: str | None,
    ) -> "ParallelismDecision":
        """The cost model's verdict on routed parallelism for this query."""
        from repro.errors import SpawnExportError
        from repro.optimizer.cost import ParallelismModel
        from repro.parallel.executor import DEFAULT_WINDOW_CHUNKS

        detector = context.detector
        process_ok = True
        if detector.gil_bound or backend_constraint == "processes":
            # Only probe exportability when processes are actually in play:
            # the probe pickles the detector.
            try:
                context.spawn_spec()
            except SpawnExportError:
                process_ok = False
        return ParallelismModel().decide(
            plan=self.plan,
            stats=stats,
            num_frames=context.video.num_frames,
            requested=requested,
            batch_size=batch_size,
            window_chunks=DEFAULT_WINDOW_CHUNKS,
            gil_bound=detector.gil_bound,
            process_ok=process_ok,
            backend_constraint=backend_constraint,
        )

    def _tracing_enabled(self, trace: bool | None, analyze: bool) -> bool:
        """Per-call ``analyze`` wins, then ``trace``, then hints, then config."""
        if analyze:
            return True
        if trace is not None:
            if not isinstance(trace, bool):
                raise ConfigurationError(
                    f"trace must be True, False or None, got {trace!r}"
                )
            return trace
        if self.hints.trace is not None:
            return self.hints.trace
        return self._session.engine.config.tracing

    def _open_stream(
        self,
        rng: np.random.Generator | None,
        stop: StopConditions | None,
        batch_size: int | None,
        params: Mapping[str, Any],
        parallelism: int | None = None,
        backend: str | None = None,
        trace: bool | None = None,
        analyze: bool = False,
    ) -> ExecutionStream:
        context = self._session._context_for(self.spec.video)
        if self.hints.use_index is False and context.index_view is not None:
            # Per-query opt-out: run index-less (the A/B knob).  The stripped
            # clone shares every other piece of per-video state, so results
            # are identical — only the detection source changes.
            context = dataclasses.replace(context, index_view=None)
        # The RNG stream is drawn now (so spawn order follows creation order)
        # but bound only while iterating: executions that run between pulls
        # of a lazy stream share the context and must not contaminate it.
        if rng is not None:
            bound_rng, seed_sequence = rng, None
        else:
            seed_sequence = self._session._next_seed_sequence()
            bound_rng = np.random.default_rng(seed_sequence)
        tracer: Tracer | None = None
        if self._tracing_enabled(trace, analyze):
            # The trace id derives from the execution's seed-sequence spawn
            # path — never from wall-clock time — and the tracer rides on a
            # private context copy so the session's cached context stays
            # tracer-free for other streams.
            tracer = Tracer.from_seed_sequence(seed_sequence)
            context = dataclasses.replace(context, tracer=tracer)
        if batch_size is None:
            batch_size = (
                self.hints.batch_size
                if self.hints.batch_size is not None
                else DEFAULT_BATCH_SIZE
            )
        control = ExecutionControl(
            stop=stop if stop is not None else self.hints.stop_conditions,
            batch_size=batch_size,
        )
        workers = self._effective_parallelism(parallelism)
        exec_backend = backend if backend is not None else self.hints.backend
        # Routed (hints / engine config) parallelism is a *default*, not an
        # order: with catalog statistics the optimizer's parallelism model
        # prices backend and worker count per query (an importance-ordered
        # scrub never amortizes startup plus speculation, a scan does);
        # without statistics the plan-level profitability gate stands in.
        # A per-call explicit ``parallelism=`` is honoured as given.
        if workers > 1 and parallelism is None:
            stats = self._session.engine.catalog.get(self.spec.video)
            if stats is not None:
                decision = self._parallelism_decision(
                    context, stats, workers, batch_size, exec_backend
                )
                workers = decision.workers
                if decision.parallel:
                    exec_backend = decision.backend
            elif not self.plan.parallel_profitable(context):
                workers = 1
        if exec_backend is None:
            exec_backend = "threads"

        def events() -> Iterator[ExecutionEvent]:
            from repro.parallel.plan import parallel_events

            self._session.stats.executions += 1
            with self._bound(params):
                if tracer is not None:
                    # Replay the prepare-time costs into this trace: parse
                    # and optimize ran once, at prepare(), for every
                    # execution of this handle.
                    tracer.synthetic_span("parse", self._parse_seconds)
                    tracer.synthetic_span("optimize", self._optimize_seconds)
                if workers > 1:
                    # Parallel executions get a private context clone: the
                    # prefetcher and the RNG stream are bound once, so the
                    # session's cached context stays clean for other streams.
                    execution_context = context.execution_clone(
                        bound_rng, seed_sequence
                    )
                    plan_events: Iterator[ExecutionEvent] = parallel_events(
                        self.plan,
                        execution_context,
                        control,
                        parallelism=workers,
                        stats=self._session.engine.catalog.get(self.spec.video),
                        backend=exec_backend,
                    )
                else:
                    plan_events = self.plan.run(context, control)
                completed: Completed | None = None
                try:
                    with maybe_span(
                        tracer,
                        "execute",
                        parallelism=workers,
                        backend=exec_backend if workers > 1 else "sequential",
                    ):
                        while True:
                            if workers <= 1:
                                context.bind_rng(bound_rng)
                            try:
                                event = next(plan_events)
                            except StopIteration:
                                break
                            if isinstance(event, Completed):
                                # Hold the terminal event until the execute
                                # span has closed, so the profile sees the
                                # finished span tree.
                                completed = event
                                break
                            yield event
                    if completed is not None:
                        result = completed.result
                        record_execution_ledger(result.kind, result.ledger)
                        if tracer is not None:
                            result.profile = build_profile(
                                result.kind,
                                self.plan.describe(),
                                self.plan.operator_tree(
                                    context.video.num_frames,
                                    self._session.engine.catalog.get(
                                        self.spec.video
                                    ),
                                ),
                                tracer,
                            )
                        yield completed
                finally:
                    # Propagate close() promptly to the plan generator — and,
                    # under parallel execution, to the in-flight shard
                    # workers, which are joined before close returns.
                    closer = getattr(plan_events, "close", None)
                    if closer is not None:
                        closer()

        return ExecutionStream(events(), control)

    def execute(
        self,
        rng: np.random.Generator | None = None,
        stop: StopConditions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        trace: bool | None = None,
        analyze: bool = False,
        **params: Any,
    ) -> QueryResult:
        """Run the prepared plan to completion by draining its event stream.

        Blocking execution is *defined* as ``stream(...).drain()``, so the
        result is identical to what iterating the stream would have produced.
        Each call draws a fresh RNG stream from the session (unless ``rng``
        is given), so repeated approximate executions sample independently.

        ``execute(analyze=True)`` is EXPLAIN ANALYZE: the execution is traced
        and the result's ``profile`` carries per-operator actual vs estimated
        detector calls and wall time (``result.profile.render()``).  The
        result values themselves are byte-identical to an untraced run.
        """
        return self._open_stream(
            rng, stop, None, params, parallelism, backend, trace, analyze
        ).drain()

    def execute_many(
        self, param_sets: Iterable[Mapping[str, Any]]
    ) -> list[QueryResult]:
        """Run the plan once per parameter set, reusing the plan and context.

        The single recording/labeled-set/feature state in the session's
        execution context is shared across all runs; only the RNG stream and
        the bound parameters vary.
        """
        return [self.execute(**dict(params)) for params in param_sets]

    # -- introspection -------------------------------------------------------------

    def explain(
        self, analyze: bool = False, **params: Any
    ) -> PlanExplanation | ExecutionProfile:
        """Structured description of the plan this query will run.

        ``explain(analyze=True)`` actually runs the query once (tracing
        enabled, fresh RNG stream) and returns its
        :class:`~repro.obs.profile.ExecutionProfile` — per-operator actual vs
        estimated detector calls and wall time.  Both return types render
        with ``.render()``.
        """
        if analyze:
            result = self.execute(analyze=True, **params)
            assert result.profile is not None  # analyze=True always traces
            return result.profile
        return self._session._explain(self.spec, self.plan, self.hints)


class QuerySession:
    """A conversation with the engine: shared context, plans and RNG streams.

    Obtained from :meth:`repro.core.engine.BlazeIt.session`; usable as a
    context manager (``with engine.session() as s:``), though no cleanup is
    required — closing merely drops the caches.
    """

    def __init__(
        self,
        engine: BlazeIt,
        video: str | None = None,
        hints: QueryHints | None = None,
    ) -> None:
        self.engine = engine
        self.video = video
        self.hints = hints or QueryHints()
        self.stats = SessionStats()
        self._seed_sequence = engine._spawn_seed_sequence()
        self._contexts: dict[str, ExecutionContext] = {}
        self._prepared: dict[tuple[str, QueryHints], PreparedQuery] = {}

    def __enter__(self) -> QuerySession:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Drop the session's context and prepared-query caches."""
        self._contexts.clear()
        self._prepared.clear()

    # -- internal plumbing ---------------------------------------------------------

    def _next_seed_sequence(self) -> np.random.SeedSequence:
        """A fresh child seed sequence for one query execution.

        The parallel engine spawns one grandchild per shard from it, keyed by
        shard id, so shard-local randomness is reproducible and independent.
        """
        return self._seed_sequence.spawn(1)[0]

    def _next_rng(self) -> np.random.Generator:
        """A fresh, independent RNG stream for one query execution."""
        return np.random.default_rng(self._next_seed_sequence())

    def _context_for(self, video: str) -> ExecutionContext:
        """The cached execution context for a video (built on first use)."""
        context = self._contexts.get(video)
        if context is None:
            context = self.engine.execution_context(video)
            self._contexts[video] = context
        return context

    def _to_ast(self, query: str | QueryBuilder | Query) -> tuple[str, Query]:
        """Normalize text / builder / AST input to ``(cache_key, ast)``."""
        if isinstance(query, QueryBuilder):
            if self.video and not query._video:
                query = query.from_(self.video)
            ast = query.build()
            return str(ast), ast
        if isinstance(query, Query):
            return str(query), query
        self.stats.parses += 1
        return query, parse(query)

    def _explain(
        self, spec: QuerySpec, plan: PhysicalPlan, hints: QueryHints
    ) -> PlanExplanation:
        store = self.engine.store
        num_frames = store.get(spec.video).num_frames if spec.video in store else 0
        # The optimizer assembles the explanation: it holds the statistics
        # catalog the per-operator cost annotations and the candidate
        # summaries are priced from.  The detector rides along so the
        # parallelism verdict can account for GIL behaviour.
        return self.engine.optimizer.explain_plan(
            spec, plan, hints, num_frames, detector=self.engine.detector_for(spec.video)
        )

    # -- public API ----------------------------------------------------------------

    def prepare(
        self, query: str | QueryBuilder | Query, hints: QueryHints | None = None
    ) -> PreparedQuery:
        """Parse, analyze and plan a query once; returns the reusable handle.

        ``query`` may be FrameQL text, a fluent :class:`QueryBuilder`, or an
        already-built AST.  Per-query ``hints`` override the session's
        default hints.
        """
        parse_started = time.perf_counter()  # repro: allow[RPR001]: prepare-time span durations (display only)
        text, ast = self._to_ast(query)
        effective_hints = require_hints(hints) if hints is not None else self.hints
        optimize_started = time.perf_counter()  # repro: allow[RPR001]: prepare-time span durations (display only)
        spec = analyze(ast)
        plan = self.engine.optimizer.plan(spec, hints=effective_hints)
        optimize_done = time.perf_counter()  # repro: allow[RPR001]: prepare-time span durations (display only)
        self.stats.plans += 1
        return PreparedQuery(
            self,
            text,
            spec,
            plan,
            effective_hints,
            parse_seconds=optimize_started - parse_started,
            optimize_seconds=optimize_done - optimize_started,
        )

    def execute(
        self,
        query: str | QueryBuilder | Query,
        hints: QueryHints | None = None,
        rng: np.random.Generator | None = None,
        stop: StopConditions | None = None,
        trace: bool | None = None,
        analyze: bool = False,
        **params: Any,
    ) -> QueryResult:
        """Prepare (with caching) and execute a query in one call.

        Repeated calls with the same query text and hints reuse the cached
        :class:`PreparedQuery` — one parse and one plan for the whole
        session — while still drawing a fresh RNG stream per execution.
        """
        return self._prepared_for(query, hints).execute(
            rng=rng, stop=stop, trace=trace, analyze=analyze, **params
        )

    def stream(
        self,
        query: str | QueryBuilder | Query,
        hints: QueryHints | None = None,
        rng: np.random.Generator | None = None,
        stop: StopConditions | None = None,
        batch_size: int | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        trace: bool | None = None,
        analyze: bool = False,
        **params: Any,
    ) -> ExecutionStream:
        """Prepare (with caching) and stream a query's execution events.

        The streaming analogue of :meth:`execute`: returns a lazy
        :class:`~repro.core.events.ExecutionStream` of typed events
        (``Progress``, ``EstimateUpdate``, ``ScrubbingHit``,
        ``SelectionWindow``, terminal ``Completed``), supporting early
        termination via ``stop=StopConditions(...)``, cooperative
        cancellation via ``stream.cancel()``, and parallel sharded execution
        via ``parallelism=`` (falling back to the hints, then the engine
        configuration).
        """
        return self._prepared_for(query, hints).stream(
            rng=rng, stop=stop, batch_size=batch_size, parallelism=parallelism,
            backend=backend, trace=trace, analyze=analyze, **params
        )

    def _prepared_for(
        self, query: str | QueryBuilder | Query, hints: QueryHints | None
    ) -> PreparedQuery:
        """The cached prepared query for (query, hints), preparing on a miss."""
        source: str | Query
        if isinstance(query, str):
            key_text = source = query
        else:
            # Compile builders exactly once: the AST serves both as the cache
            # key and, on a miss, as the prepare() input.
            if isinstance(query, QueryBuilder) and self.video and not query._video:
                query = query.from_(self.video)
            source = query.build() if isinstance(query, QueryBuilder) else query
            key_text = str(source)
        key = (key_text, hints if hints is not None else self.hints)
        prepared = self._prepared.get(key)
        if prepared is None:
            prepared = self.prepare(source, hints=hints)
            self._prepared[key] = prepared
        else:
            self.stats.prepared_cache_hits += 1
        return prepared

    def execute_many(
        self,
        query: str | QueryBuilder | Query,
        param_sets: Iterable[Mapping[str, Any]],
        hints: QueryHints | None = None,
    ) -> list[QueryResult]:
        """Prepare a query once and execute it for every parameter set."""
        return self.prepare(query, hints=hints).execute_many(param_sets)

    def explain(
        self, query: str | QueryBuilder | Query, hints: QueryHints | None = None
    ) -> PlanExplanation:
        """The structured plan explanation for a query, without executing it."""
        return self.prepare(query, hints=hints).explain()
