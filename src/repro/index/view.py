"""Query-time adapter over one committed index generation.

:class:`IndexView` is what an :class:`~repro.core.context.ExecutionContext`
holds: a thin, thread-safe façade over a :class:`~repro.index.store.VideoIndex`
that serves exact detector output without charging the detector.

Two serving modes, both provably identical to running the detector:

* **hit** — the frame's range contains detections somewhere, so the frame is
  decoded from the memory-mapped segment (persisted detector output is exact);
* **skip** — the range sketch proves the whole range empty, so an empty
  ``DetectionResult`` is synthesized without touching the segment
  (``timestamp = frame / fps`` matches ``SyntheticVideo.timestamp_of``
  bit-for-bit).

The view also answers the sketch's exact per-frame proofs
(:meth:`class_count_zero`, :meth:`fails_min_counts`) so count scans and
min-count probes can skip provably-irrelevant frames without any decode —
invariant I7: index evidence is an upper bound, skipping never changes
results.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from typing import Any

from repro.detection.base import DetectionResult
from repro.index.sketches import RangeSketch
from repro.index.store import VideoIndex


class IndexView:
    """Thread-safe read façade over one :class:`VideoIndex` generation."""

    def __init__(self, index: VideoIndex) -> None:
        self.index = index
        self.cache_key = index.cache_key
        self._fps = float(index.fps)
        self._lock = threading.Lock()
        self.frames_served = 0
        self.frames_skipped = 0

    @property
    def video_name(self) -> str:
        """The registered video name the index was built for."""
        return self.index.video

    @property
    def num_frames(self) -> int:
        """Number of frames the index covers."""
        return self.index.num_frames

    @property
    def sketch(self) -> RangeSketch:
        """The generation's exact range sketch."""
        return self.index.sketch

    def get(self, frame_index: int) -> tuple[DetectionResult, bool] | None:
        """Serve one frame's exact detections: ``(result, skipped)``.

        ``skipped=True`` means the sketch proved the covering range empty and
        the result was synthesized without decoding the segment.  Returns
        ``None`` only for frames outside the indexed range.
        """
        if not 0 <= frame_index < self.index.num_frames:
            return None
        if self.index.sketch.frame_is_provably_empty(frame_index):
            result = DetectionResult(
                frame_index=frame_index,
                timestamp=frame_index / self._fps,
                detections=[],
            )
            with self._lock:
                self.frames_skipped += 1
            return result, True
        result = self.index.result_for(frame_index)
        with self._lock:
            self.frames_served += 1
        return result, False

    def class_count_zero(self, frame_index: int, object_class: str) -> bool:
        """``True`` when the class provably has count 0 at the frame."""
        if not 0 <= frame_index < self.index.num_frames:
            return False
        return self.index.sketch.class_absent_at(frame_index, object_class)

    def fails_min_counts(
        self, frame_index: int, min_counts: Mapping[str, int]
    ) -> bool:
        """``True`` when the min-count conjunction is provably unsatisfiable."""
        if not 0 <= frame_index < self.index.num_frames:
            return False
        return self.index.sketch.fails_min_counts(frame_index, min_counts)

    def counters(self) -> dict[str, int]:
        """Served/skipped frame counts since the view was attached."""
        with self._lock:
            return {
                "frames_served": self.frames_served,
                "frames_skipped": self.frames_skipped,
            }

    def describe(self) -> dict[str, Any]:
        """Status row: the index summary plus this view's serve counters."""
        payload = self.index.describe()
        payload.update(self.counters())
        return payload

    def close(self) -> None:
        """Release the underlying memory maps."""
        self.index.close()


__all__ = ["IndexView"]
