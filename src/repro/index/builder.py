"""Ingest-time index builder: run the detector once, persist the evidence.

``build_video_index`` runs the batched detection pipeline over every frame of
one video — through :meth:`ExecutionContext.detect_batch`, the single charging
chokepoint, so the build is priced like any other detector work — and commits
a new index generation atomically:

1. stale ``.tmp`` directories and orphaned generations from crashed builds
   are swept;
2. segments, the range sketch and the optional statistics entry are written
   into ``gen-N.tmp`` (every file via ``persist.atomic_write_*``);
3. the finished directory is renamed to ``gen-N``;
4. the manifest is atomically replaced — the commit point.  A crash anywhere
   before step 4 leaves the previous generation untouched and no litter
   behind (the ``finally`` clause removes the partial build; a hard kill is
   covered by the sweep in step 1).
"""

from __future__ import annotations

import io
import json
import shutil
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.detection.base import DetectionResult
from repro.detection.columnar import encode_detection_results
from repro.errors import ConfigurationError
from repro.index.sketches import DEFAULT_RANGE_SIZE, RangeSketch
from repro.index.store import (
    DEFAULT_SEGMENT_FRAMES,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    SKETCH_NAME,
    STATISTICS_NAME,
    PersistentIndex,
    VideoIndex,
    generation_dirname,
    sweep_stale_builds,
    write_array,
)
from repro.metrics.runtime import ExecutionLedger
from repro.obs.metrics import get_registry
from repro.persist import atomic_write_bytes, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics
    from repro.core.context import ExecutionContext


def _committed_generation(directory: Any) -> int:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return 0
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return 0
    if manifest.get("format") != MANIFEST_FORMAT:
        return 0
    return int(manifest.get("generation", 0))


def build_video_index(
    store: PersistentIndex,
    video_name: str,
    context: ExecutionContext,
    *,
    range_size: int = DEFAULT_RANGE_SIZE,
    segment_frames: int = DEFAULT_SEGMENT_FRAMES,
    statistics: VideoStatistics | None = None,
) -> dict[str, Any]:
    """Build and atomically commit a new index generation; return a report."""
    if segment_frames < 1:
        raise ConfigurationError(
            f"segment_frames must be >= 1, got {segment_frames}"
        )
    if not context.cache_key:
        raise ConfigurationError(
            "index builds need a context with a cache key (build through "
            "BlazeIt.build_index so index entries match query-time identity)"
        )
    video = context.video
    num_frames = video.num_frames
    directory = store.video_dir(video_name, context.cache_key)
    directory.mkdir(parents=True, exist_ok=True)
    previous = _committed_generation(directory)
    sweep_stale_builds(directory, previous or None)

    generation = previous + 1
    tmp_dir = directory / f"{generation_dirname(generation)}.tmp"
    gen_dir = directory / generation_dirname(generation)
    tmp_dir.mkdir()

    ledger = ExecutionLedger()
    segments: list[dict[str, int | str]] = []
    all_results: list[DetectionResult] = []
    committed = False
    try:
        for start in range(0, num_frames, segment_frames):
            end = min(num_frames, start + segment_frames)
            results = context.detect_batch(
                np.arange(start, end, dtype=np.int64), ledger
            )
            name = f"seg-{start // segment_frames:06d}"
            for column, values in encode_detection_results(results).items():
                write_array(tmp_dir / f"{name}.{column}.npy", values)
            segments.append({"name": name, "start": start, "end": end})
            all_results.extend(results)

        sketch = RangeSketch.from_results(all_results, num_frames, range_size)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **sketch.to_arrays())
        atomic_write_bytes(tmp_dir / SKETCH_NAME, buffer.getvalue())

        if statistics is not None:
            atomic_write_text(
                tmp_dir / STATISTICS_NAME,
                json.dumps(statistics.to_dict(), indent=2),
            )

        tmp_dir.rename(gen_dir)
        manifest = {
            "format": MANIFEST_FORMAT,
            "video": video_name,
            "cache_key": context.cache_key,
            "detector": context.detector.name,
            "num_frames": num_frames,
            "fps": float(video.spec.fps),
            "range_size": range_size,
            "segment_frames": segment_frames,
            "generation": generation,
            "segments": segments,
            "has_statistics": statistics is not None,
        }
        atomic_write_text(directory / MANIFEST_NAME, json.dumps(manifest, indent=2))
        committed = True
    finally:
        if not committed:
            shutil.rmtree(tmp_dir, ignore_errors=True)
            shutil.rmtree(gen_dir, ignore_errors=True)

    # The newly orphaned previous generation is swept best-effort; a crash
    # here just leaves work for the next build's sweep.
    sweep_stale_builds(directory, generation)

    registry = get_registry()
    labels = {"video": video_name}
    registry.inc(
        "repro_index_builds_total",
        labels=labels,
        help="Committed index generations.",
    )
    registry.inc(
        "repro_index_frames_indexed_total",
        num_frames,
        labels,
        help="Frames covered by committed index builds.",
    )
    registry.inc(
        "repro_index_build_detector_calls_total",
        ledger.detector_calls,
        labels,
        help="Detector invocations charged to index builds.",
    )

    return {
        "video": video_name,
        "generation": generation,
        "num_frames": num_frames,
        "segments": len(segments),
        "segment_frames": segment_frames,
        "detector_calls": ledger.detector_calls,
        "cache_hits": ledger.detection_cache_hits,
        "has_statistics": statistics is not None,
        **sketch.describe(),
    }


def open_index(
    store: PersistentIndex, video_name: str, cache_key: str
) -> VideoIndex | None:
    """Convenience re-export of :meth:`PersistentIndex.open`."""
    return store.open(video_name, cache_key)


__all__ = ["build_video_index", "open_index"]
