"""Persistent ingest-time index with range sketches and data skipping.

The paper's core bet is to do expensive work once at ingest so queries touch
as few frames as possible.  This package persists the expensive work — exact
detector output — and the evidence needed to skip frames without redoing it:

* :mod:`repro.index.store` — columnar detection segments (the
  ``detection/columnar.py`` wire format, one memory-mapped ``.npy`` per
  column) behind an atomically-committed, versioned manifest;
* :mod:`repro.index.sketches` — exact per-range class presence/count
  sketches with upper-bound window queries (a rate of 0 is a proof);
* :mod:`repro.index.builder` — the crash-safe ingest build;
* :mod:`repro.index.view` — the query-time façade execution contexts hold.

Build from the command line with ``python -m repro.index`` or through
``BlazeIt(index_dir=...).build_index(video)``.
"""

from repro.index.builder import build_video_index
from repro.index.sketches import DEFAULT_RANGE_SIZE, RangeSketch
from repro.index.store import (
    DEFAULT_SEGMENT_FRAMES,
    PersistentIndex,
    VideoIndex,
)
from repro.index.view import IndexView

__all__ = [
    "DEFAULT_RANGE_SIZE",
    "DEFAULT_SEGMENT_FRAMES",
    "IndexView",
    "PersistentIndex",
    "RangeSketch",
    "VideoIndex",
    "build_video_index",
]
