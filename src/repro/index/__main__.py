"""Build a persistent index from the command line.

Example::

    PYTHONPATH=src python -m repro.index --index-dir ./index \\
        --scenario rialto --frames 4000

The build registers the scenario (training a labeled set so the statistics
catalog entry can be persisted alongside the segments), runs the detector
once over every frame, and atomically commits the new generation.  Any
subsequent ``BlazeIt(index_dir=...)`` process warm-starts from the result.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.index.sketches import DEFAULT_RANGE_SIZE
from repro.index.store import DEFAULT_SEGMENT_FRAMES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.index",
        description="Build a persistent detection index for one scenario.",
    )
    parser.add_argument("--index-dir", required=True, help="store root directory")
    parser.add_argument("--scenario", default="rialto", help="scenario name")
    parser.add_argument(
        "--name", default=None, help="registered video name (default: scenario)"
    )
    parser.add_argument("--frames", type=int, default=2000, help="test-day frames")
    parser.add_argument(
        "--range-size",
        type=int,
        default=DEFAULT_RANGE_SIZE,
        help="frames per sketch range",
    )
    parser.add_argument(
        "--segment-frames",
        type=int,
        default=DEFAULT_SEGMENT_FRAMES,
        help="frames per columnar segment",
    )
    args = parser.parse_args(argv)

    from repro import BlazeIt

    engine = BlazeIt(index_dir=args.index_dir)
    name = args.name or args.scenario
    engine.register_scenario(args.scenario, name=name, num_frames=args.frames)
    report = engine.build_index(
        name, range_size=args.range_size, segment_frames=args.segment_frames
    )
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
