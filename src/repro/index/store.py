"""Persistent on-disk index: columnar detection segments behind a manifest.

Layout, one directory per ``(video, cache key)`` under the store root::

    <root>/<video-slug>/
        manifest.json              <- the commit point (atomic_write_text)
        gen-000001/
            seg-000000.<column>.npy   one plain .npy per columnar array,
            ...                       memory-mapped at read time
            sketch.npz                RangeSketch (exact per-range evidence)
            statistics.json           optional StatisticsCatalog entry

Builds are crash-safe by construction: a new generation is assembled in a
``gen-N.tmp`` directory (every file through ``persist.atomic_write_*``),
renamed into place, and only then does the manifest — itself atomically
replaced — start pointing at it.  A process killed at any moment leaves the
previous generation fully readable; stale ``.tmp`` directories and orphaned
generations are swept at the start of the next build.

Segments reuse the :mod:`repro.detection.columnar` wire format verbatim, one
plain ``.npy`` file per column so ``np.load(..., mmap_mode="r")`` can serve
single frames without reading the segment.  Decoding a frame slices the
CSR window out of the memory-mapped columns and hands it to the same
``decode_detection_results`` the parallel transport uses, so index reads are
bit-for-bit identical to live detector output.
"""

from __future__ import annotations

import hashlib
import io
import json
import re
import shutil
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.catalog.statistics import VideoStatistics
from repro.detection.base import DetectionResult
from repro.detection.columnar import decode_detection_results
from repro.errors import ConfigurationError
from repro.index.sketches import RangeSketch
from repro.persist import atomic_write_bytes

MANIFEST_FORMAT = "video-index/v1"
MANIFEST_NAME = "manifest.json"
SKETCH_NAME = "sketch.npz"
STATISTICS_NAME = "statistics.json"

#: Default number of frames per columnar segment.
DEFAULT_SEGMENT_FRAMES = 512

#: Column order of the columnar wire format (``detection/columnar.py``).
SEGMENT_COLUMNS = (
    "frame_index",
    "timestamp",
    "det_offsets",
    "class_code",
    "class_table",
    "box",
    "confidence",
    "feature_len",
    "features_flat",
    "color",
    "has_color",
    "color_name_code",
    "color_name_table",
    "track_id",
)

# Detection-level columns sliced by the CSR window when decoding one frame.
_DET_COLUMNS = (
    "class_code",
    "box",
    "confidence",
    "feature_len",
    "color",
    "has_color",
    "color_name_code",
    "track_id",
)


def video_slug(video_name: str, cache_key: str) -> str:
    """Stable directory name for one ``(video, cache key)`` index entry."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "-", video_name).strip("-") or "video"
    digest = hashlib.sha256(cache_key.encode("utf-8")).hexdigest()[:10]
    return f"{safe[:48]}-{digest}"


def generation_dirname(generation: int) -> str:
    """Directory name of one committed generation."""
    return f"gen-{generation:06d}"


@dataclass(frozen=True)
class Segment:
    """One contiguous frame window persisted as columnar ``.npy`` files."""

    name: str
    start: int
    end: int


class VideoIndex:
    """Read-side handle on one committed index generation.

    Columns are opened lazily with ``np.load(..., mmap_mode="r")`` and stay
    mapped until :meth:`close` — call it before unlinking any generation
    directory (persistence-hygiene invariant I7 / rule RPR007).
    """

    def __init__(self, directory: Path, manifest: dict[str, Any]) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.video: str = str(manifest["video"])
        self.cache_key: str = str(manifest["cache_key"])
        self.num_frames: int = int(manifest["num_frames"])
        self.fps: float = float(manifest["fps"])
        self.generation: int = int(manifest["generation"])
        self.segment_frames: int = int(manifest["segment_frames"])
        self.segments: tuple[Segment, ...] = tuple(
            Segment(name=str(s["name"]), start=int(s["start"]), end=int(s["end"]))
            for s in manifest["segments"]
        )
        self.generation_dir = self.directory / generation_dirname(self.generation)
        self._columns: dict[str, dict[str, np.ndarray]] = {}
        self._feature_offsets: dict[str, np.ndarray] = {}
        self._sketch: RangeSketch | None = None

    @classmethod
    def open(cls, directory: Path) -> VideoIndex:
        """Open the generation the manifest points at."""
        manifest_path = Path(directory) / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ConfigurationError(f"no index manifest at {manifest_path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"unreadable index manifest at {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"not a video index manifest: format "
                f"{manifest.get('format')!r} != {MANIFEST_FORMAT!r}"
            )
        return cls(Path(directory), manifest)

    @property
    def sketch(self) -> RangeSketch:
        """The generation's range sketch (loaded once, then cached)."""
        if self._sketch is None:
            with np.load(self.generation_dir / SKETCH_NAME) as arrays:
                self._sketch = RangeSketch.from_arrays(arrays)
        return self._sketch

    def statistics(self) -> VideoStatistics | None:
        """The persisted catalog entry, when the build included one."""
        path = self.generation_dir / STATISTICS_NAME
        if not path.exists():
            return None
        return VideoStatistics.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def _segment_for(self, frame_index: int) -> Segment:
        if not 0 <= frame_index < self.num_frames:
            raise ConfigurationError(
                f"frame {frame_index} outside indexed range "
                f"[0, {self.num_frames}) of video {self.video!r}"
            )
        return self.segments[frame_index // self.segment_frames]

    def _segment_arrays(self, segment: Segment) -> dict[str, np.ndarray]:
        arrays = self._columns.get(segment.name)
        if arrays is None:
            arrays = {
                column: np.load(
                    self.generation_dir / f"{segment.name}.{column}.npy",
                    mmap_mode="r",
                )
                for column in SEGMENT_COLUMNS
            }
            self._columns[segment.name] = arrays
        return arrays

    def _segment_feature_offsets(self, segment: Segment) -> np.ndarray:
        offsets = self._feature_offsets.get(segment.name)
        if offsets is None:
            feature_len = np.asarray(self._segment_arrays(segment)["feature_len"])
            offsets = np.zeros(len(feature_len) + 1, dtype=np.int64)
            np.cumsum(np.maximum(feature_len, 0), out=offsets[1:])
            self._feature_offsets[segment.name] = offsets
        return offsets

    def result_for(self, frame_index: int) -> DetectionResult:
        """Decode one frame's exact detector output from the mapped segment."""
        segment = self._segment_for(frame_index)
        arrays = self._segment_arrays(segment)
        local = frame_index - segment.start
        lo = int(arrays["det_offsets"][local])
        hi = int(arrays["det_offsets"][local + 1])
        feature_offsets = self._segment_feature_offsets(segment)
        f_lo = int(feature_offsets[lo])
        f_hi = int(feature_offsets[hi])
        window = {
            "frame_index": np.asarray(arrays["frame_index"][local : local + 1]),
            "timestamp": np.asarray(arrays["timestamp"][local : local + 1]),
            "det_offsets": np.asarray([0, hi - lo], dtype=np.int64),
            "class_table": np.asarray(arrays["class_table"]),
            "color_name_table": np.asarray(arrays["color_name_table"]),
            "features_flat": np.asarray(arrays["features_flat"][f_lo:f_hi]),
        }
        for column in _DET_COLUMNS:
            window[column] = np.asarray(arrays[column][lo:hi])
        return decode_detection_results(window)[0]

    def segment_results(self, segment: Segment) -> list[DetectionResult]:
        """Decode one whole segment (used by cache warm-start)."""
        arrays = {
            column: np.asarray(values)
            for column, values in self._segment_arrays(segment).items()
        }
        return decode_detection_results(arrays)

    def iter_segments(self) -> Iterator[tuple[Segment, list[DetectionResult]]]:
        """Decode every segment in frame order."""
        for segment in self.segments:
            yield segment, self.segment_results(segment)

    def close(self) -> None:
        """Release every memory-mapped column (required before unlink)."""
        for arrays in self._columns.values():
            for values in arrays.values():
                mapping = getattr(values, "_mmap", None)
                if mapping is not None:
                    mapping.close()
        self._columns.clear()
        self._feature_offsets.clear()

    def describe(self) -> dict[str, Any]:
        """Status summary for ``BlazeIt.index_status()`` and the CLI."""
        payload: dict[str, Any] = {
            "video": self.video,
            "generation": self.generation,
            "num_frames": self.num_frames,
            "segments": len(self.segments),
            "segment_frames": self.segment_frames,
            "detector": self.manifest.get("detector", ""),
            "has_statistics": bool(self.manifest.get("has_statistics", False)),
        }
        payload.update(self.sketch.describe())
        return payload


class PersistentIndex:
    """The store root: one :class:`VideoIndex` directory per indexed video."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def video_dir(self, video_name: str, cache_key: str) -> Path:
        """The directory owning one ``(video, cache key)`` entry."""
        return self.root / video_slug(video_name, cache_key)

    def open(self, video_name: str, cache_key: str) -> VideoIndex | None:
        """Open the committed generation, or ``None`` when absent/mismatched."""
        directory = self.video_dir(video_name, cache_key)
        if not (directory / MANIFEST_NAME).exists():
            return None
        index = VideoIndex.open(directory)
        if index.cache_key != cache_key:
            return None
        return index

    def entries(self) -> list[VideoIndex]:
        """Every committed index under the root (unreadable dirs skipped)."""
        if not self.root.is_dir():
            return []
        indexes: list[VideoIndex] = []
        for directory in sorted(self.root.iterdir()):
            if not (directory / MANIFEST_NAME).is_file():
                continue
            try:
                indexes.append(VideoIndex.open(directory))
            except ConfigurationError:
                continue
        return indexes

    def status(self) -> dict[str, Any]:
        """Store-level summary: root path plus one row per committed video."""
        videos: list[dict[str, Any]] = []
        for index in self.entries():
            try:
                videos.append(index.describe())
            finally:
                index.close()
        return {"root": str(self.root), "videos": videos}


def sweep_stale_builds(directory: Path, keep_generation: int | None) -> None:
    """Remove ``.tmp`` build dirs and generations the manifest doesn't own."""
    if not directory.is_dir():
        return
    keep = generation_dirname(keep_generation) if keep_generation else None
    for child in directory.iterdir():
        if not child.is_dir():
            continue
        if child.name.endswith(".tmp") or (
            child.name.startswith("gen-") and child.name != keep
        ):
            shutil.rmtree(child, ignore_errors=True)


def write_array(path: Path, values: np.ndarray) -> None:
    """Persist one array as a plain ``.npy`` file via the atomic writer."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(values))
    atomic_write_bytes(path, buffer.getvalue())


__all__ = [
    "DEFAULT_SEGMENT_FRAMES",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "SKETCH_NAME",
    "STATISTICS_NAME",
    "SEGMENT_COLUMNS",
    "PersistentIndex",
    "Segment",
    "VideoIndex",
    "generation_dirname",
    "sweep_stale_builds",
    "video_slug",
    "write_array",
]
