"""Per-range class presence/count sketches over persisted detections.

A :class:`RangeSketch` summarises the exact detector output of one video at a
configurable range granularity: for every ``range_size``-frame window it
records, per object class, how many frames contain the class, the summed
count, and the per-frame maximum, plus how many frames in the window contain
*any* detection.  Because the sketch is built from the same persisted
detections the index serves at query time, its guarantees are proofs, not
estimates:

* ``frame_is_provably_empty`` / ``class_absent_at`` / ``fails_min_counts``
  are exact — a ``True`` answer can never be contradicted by decoding the
  frame;
* ``range_presence_rate`` / ``range_event_rate`` follow the cost model's
  validated upper-bound contract: the returned rate is ``>=`` the true rate
  over any ``[start, end)`` window (exact when the window aligns with range
  boundaries), so a rate of ``0.0`` proves the window empty and pruning it
  can never change results.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.detection.base import DetectionResult
from repro.errors import ConfigurationError

#: Default number of frames summarised by one sketch range.
DEFAULT_RANGE_SIZE = 64

SKETCH_FORMAT = "range-sketch/v1"


@dataclass(frozen=True)
class RangeSketch:
    """Exact per-range class statistics with upper-bound window queries."""

    num_frames: int
    range_size: int
    class_table: tuple[str, ...]
    #: ``(num_ranges, num_classes)`` — frames in range containing the class.
    presence_frames: np.ndarray
    #: ``(num_ranges, num_classes)`` — summed per-frame counts of the class.
    total_count: np.ndarray
    #: ``(num_ranges, num_classes)`` — maximum per-frame count of the class.
    max_count: np.ndarray
    #: ``(num_ranges,)`` — frames in range containing any detection at all.
    occupied_frames: np.ndarray

    @classmethod
    def from_results(
        cls,
        results: Sequence[DetectionResult],
        num_frames: int,
        range_size: int = DEFAULT_RANGE_SIZE,
    ) -> RangeSketch:
        """Build the sketch from full-coverage, frame-ordered detections."""
        if range_size < 1:
            raise ConfigurationError(f"range_size must be >= 1, got {range_size}")
        if len(results) != num_frames:
            raise ConfigurationError(
                f"sketch needs one result per frame: got {len(results)} "
                f"results for {num_frames} frames"
            )
        names = sorted(
            {det.object_class for result in results for det in result.detections}
        )
        columns = {name: i for i, name in enumerate(names)}
        num_ranges = max(1, -(-num_frames // range_size))
        presence = np.zeros((num_ranges, len(names)), dtype=np.int64)
        total = np.zeros((num_ranges, len(names)), dtype=np.int64)
        peak = np.zeros((num_ranges, len(names)), dtype=np.int64)
        occupied = np.zeros(num_ranges, dtype=np.int64)
        for position, result in enumerate(results):
            if result.frame_index != position:
                raise ConfigurationError(
                    f"sketch input must be frame-ordered: result {position} "
                    f"covers frame {result.frame_index}"
                )
            range_index = position // range_size
            if not result.detections:
                continue
            occupied[range_index] += 1
            counts: dict[str, int] = {}
            for det in result.detections:
                counts[det.object_class] = counts.get(det.object_class, 0) + 1
            for name, count in counts.items():
                column = columns[name]
                presence[range_index, column] += 1
                total[range_index, column] += count
                if count > peak[range_index, column]:
                    peak[range_index, column] = count
        return cls(
            num_frames=num_frames,
            range_size=range_size,
            class_table=tuple(names),
            presence_frames=presence,
            total_count=total,
            max_count=peak,
            occupied_frames=occupied,
        )

    @property
    def num_ranges(self) -> int:
        """Number of summarised ranges."""
        return int(self.occupied_frames.shape[0])

    def range_bounds(self, range_index: int) -> tuple[int, int]:
        """The ``[start, end)`` frame window summarised by one range."""
        start = range_index * self.range_size
        return start, min(self.num_frames, start + self.range_size)

    def _column(self, object_class: str) -> int | None:
        try:
            return self.class_table.index(object_class)
        except ValueError:
            return None

    # -- exact per-frame proofs ------------------------------------------

    def frame_is_provably_empty(self, frame_index: int) -> bool:
        """``True`` when no frame in the covering range has any detection."""
        range_index = frame_index // self.range_size
        if not 0 <= range_index < self.num_ranges:
            return False
        return int(self.occupied_frames[range_index]) == 0

    def class_absent_at(self, frame_index: int, object_class: str) -> bool:
        """``True`` when the class provably has count 0 at the frame."""
        column = self._column(object_class)
        if column is None:
            # The class never appears anywhere in the indexed video.
            return True
        range_index = frame_index // self.range_size
        if not 0 <= range_index < self.num_ranges:
            return False
        return int(self.total_count[range_index, column]) == 0

    def fails_min_counts(
        self, frame_index: int, min_counts: Mapping[str, int]
    ) -> bool:
        """``True`` when some class provably cannot reach its minimum."""
        range_index = frame_index // self.range_size
        for name, minimum in min_counts.items():
            if minimum <= 0:
                continue
            column = self._column(name)
            if column is None:
                return True
            if 0 <= range_index < self.num_ranges and (
                int(self.max_count[range_index, column]) < int(minimum)
            ):
                return True
        return False

    # -- upper-bound window rates (the sharder's contract) ---------------

    def _overlapped_ranges(self, start: int, end: int) -> range:
        first = start // self.range_size
        last = (end - 1) // self.range_size
        return range(first, min(last, self.num_ranges - 1) + 1)

    def range_presence_rate(self, object_class: str, start: int, end: int) -> float:
        """Upper bound on the fraction of ``[start, end)`` frames with the class."""
        start = max(0, int(start))
        end = min(self.num_frames, int(end))
        if end <= start:
            return 0.0
        column = self._column(object_class)
        if column is None:
            return 0.0
        bound = 0
        for range_index in self._overlapped_ranges(start, end):
            range_start, range_end = self.range_bounds(range_index)
            overlap = min(end, range_end) - max(start, range_start)
            bound += min(int(self.presence_frames[range_index, column]), overlap)
        return bound / (end - start)

    def range_event_rate(
        self, min_counts: Mapping[str, int], start: int, end: int
    ) -> float:
        """Upper bound on the fraction of frames satisfying all minimums.

        Per range, the number of frames with ``count(cls) >= m`` is bounded by
        ``min(presence_frames, total_count // m)`` (each qualifying frame
        contributes at least ``m`` to the total), and is 0 when the per-frame
        maximum never reaches ``m``.  The conjunction is bounded by the
        tightest per-class bound.
        """
        start = max(0, int(start))
        end = min(self.num_frames, int(end))
        if end <= start:
            return 0.0
        active = {name: int(m) for name, m in min_counts.items() if int(m) >= 1}
        if not active:
            return 1.0
        bound = 0
        for range_index in self._overlapped_ranges(start, end):
            range_start, range_end = self.range_bounds(range_index)
            overlap = min(end, range_end) - max(start, range_start)
            range_bound = overlap
            for name, minimum in active.items():
                column = self._column(name)
                if column is None:
                    range_bound = 0
                    break
                if int(self.max_count[range_index, column]) < minimum:
                    range_bound = 0
                    break
                class_bound = min(
                    int(self.presence_frames[range_index, column]),
                    int(self.total_count[range_index, column]) // minimum,
                )
                range_bound = min(range_bound, class_bound)
            bound += range_bound
        return bound / (end - start)

    # -- persistence ------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar form for ``np.savez`` persistence."""
        return {
            "sketch_format": np.asarray(SKETCH_FORMAT),
            "num_frames": np.asarray(self.num_frames, dtype=np.int64),
            "range_size": np.asarray(self.range_size, dtype=np.int64),
            "class_table": np.asarray(self.class_table, dtype=np.str_),
            "presence_frames": self.presence_frames,
            "total_count": self.total_count,
            "max_count": self.max_count,
            "occupied_frames": self.occupied_frames,
        }

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, Any]) -> RangeSketch:
        """Rebuild from :meth:`to_arrays` output (or an ``NpzFile``)."""
        fmt = str(np.asarray(arrays["sketch_format"]))
        if fmt != SKETCH_FORMAT:
            raise ConfigurationError(
                f"not a range sketch: format {fmt!r} != {SKETCH_FORMAT!r}"
            )
        return cls(
            num_frames=int(np.asarray(arrays["num_frames"])),
            range_size=int(np.asarray(arrays["range_size"])),
            class_table=tuple(str(name) for name in np.asarray(arrays["class_table"])),
            presence_frames=np.asarray(arrays["presence_frames"], dtype=np.int64),
            total_count=np.asarray(arrays["total_count"], dtype=np.int64),
            max_count=np.asarray(arrays["max_count"], dtype=np.int64),
            occupied_frames=np.asarray(arrays["occupied_frames"], dtype=np.int64),
        )

    def describe(self) -> dict[str, Any]:
        """Summary used by ``BlazeIt.index_status()`` and the build CLI."""
        empty_ranges = int(np.count_nonzero(self.occupied_frames == 0))
        return {
            "num_frames": self.num_frames,
            "range_size": self.range_size,
            "num_ranges": self.num_ranges,
            "empty_ranges": empty_ranges,
            "classes": list(self.class_table),
        }


__all__ = ["DEFAULT_RANGE_SIZE", "RangeSketch"]
