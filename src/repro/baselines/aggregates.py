"""Aggregate-query baselines (the non-BlazeIt bars of Figure 4).

* ``naive_aggregate`` — object detection on every frame.
* ``noscope_oracle_aggregate`` — detection only on frames where the (free)
  oracle says the class is present; empty frames contribute zero to the count
  without a detector call.
* ``naive_aqp_aggregate`` — uniform adaptive sampling of detector calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aqp.sampling import AdaptiveSamplingConfig, adaptive_sample
from repro.core.recorded import RecordedDetections
from repro.metrics.runtime import RuntimeLedger


@dataclass
class BaselineAggregateResult:
    """Result of an aggregate baseline run."""

    value: float
    detection_calls: int
    ledger: RuntimeLedger
    samples_used: int

    @property
    def runtime_seconds(self) -> float:
        """Total simulated runtime of the baseline."""
        return self.ledger.total_seconds


def naive_aggregate(
    recorded: RecordedDetections, object_class: str
) -> BaselineAggregateResult:
    """FCOUNT by running the detector on every frame."""
    ledger = RuntimeLedger()
    counts = recorded.counts(object_class)
    ledger.charge(recorded.detector.cost, recorded.num_frames)
    value = float(counts.mean()) if counts.size else 0.0
    return BaselineAggregateResult(
        value=value,
        detection_calls=recorded.num_frames,
        ledger=ledger,
        samples_used=recorded.num_frames,
    )


def noscope_oracle_aggregate(
    recorded: RecordedDetections, object_class: str
) -> BaselineAggregateResult:
    """FCOUNT using the NoScope oracle to skip empty frames.

    The oracle (free) reports presence per frame; the detector is then called
    only on occupied frames to count the individual objects, exactly as in
    Section 10.1.1.
    """
    ledger = RuntimeLedger()
    counts = recorded.counts(object_class)
    occupied = int((counts > 0).sum())
    ledger.charge(recorded.detector.cost, occupied)
    value = float(counts.mean()) if counts.size else 0.0
    return BaselineAggregateResult(
        value=value,
        detection_calls=occupied,
        ledger=ledger,
        samples_used=recorded.num_frames,
    )


def naive_aqp_aggregate(
    recorded: RecordedDetections,
    object_class: str,
    error_tolerance: float,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
    value_range: float | None = None,
    config: AdaptiveSamplingConfig | None = None,
) -> BaselineAggregateResult:
    """FCOUNT by uniform adaptive sampling of detector calls (no variance reduction)."""
    ledger = RuntimeLedger()
    counts = recorded.counts(object_class)
    if value_range is None:
        value_range = float(counts.max(initial=0) + 1)

    def sample_fn(indices: np.ndarray) -> np.ndarray:
        ledger.charge(recorded.detector.cost, int(np.asarray(indices).size))
        return counts[np.asarray(indices, dtype=np.int64)]

    result = adaptive_sample(
        sample_fn=sample_fn,
        population_size=recorded.num_frames,
        error_tolerance=error_tolerance,
        confidence=confidence,
        value_range=value_range,
        rng=rng,
        config=config,
    )
    return BaselineAggregateResult(
        value=result.estimate,
        detection_calls=result.samples_used,
        ledger=ledger,
        samples_used=result.samples_used,
    )
