"""Baseline strategies the paper compares against (Section 10.1.1).

* **Naive** — run the object detector on every frame (or, for scrubbing,
  sequentially until enough matches are found).
* **NoScope oracle** — an oracle, free to query, that reports per frame
  whether an object class is present; the detector is then run only on
  occupied frames.  This is strictly stronger than the real NoScope system.
* **Naive AQP** — uniform adaptive sampling of detector calls with no
  variance reduction.

All baselines read from a :class:`~repro.core.recorded.RecordedDetections`
recording and charge detector cost per frame "processed", matching the paper's
cost-extrapolation methodology.
"""

from repro.baselines.aggregates import (
    BaselineAggregateResult,
    naive_aggregate,
    naive_aqp_aggregate,
    noscope_oracle_aggregate,
)
from repro.baselines.scrubbing import (
    BaselineScrubResult,
    naive_scrub,
    noscope_oracle_scrub_baseline,
    random_scrub_baseline,
)
from repro.baselines.selection import (
    BaselineSelectionResult,
    naive_selection,
    noscope_oracle_selection,
)

__all__ = [
    "BaselineAggregateResult",
    "naive_aggregate",
    "noscope_oracle_aggregate",
    "naive_aqp_aggregate",
    "BaselineScrubResult",
    "naive_scrub",
    "random_scrub_baseline",
    "noscope_oracle_scrub_baseline",
    "BaselineSelectionResult",
    "naive_selection",
    "noscope_oracle_selection",
]
