"""Content-based selection baselines (the non-BlazeIt bars of Figure 10)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recorded import RecordedDetections
from repro.frameql.analyzer import SelectionQuerySpec
from repro.metrics.runtime import RuntimeLedger
from repro.optimizer.selection import detection_matches
from repro.udf.registry import UDFRegistry


@dataclass
class BaselineSelectionResult:
    """Result of a selection baseline run."""

    matched_frames: list[int]
    detection_calls: int
    ledger: RuntimeLedger

    @property
    def runtime_seconds(self) -> float:
        """Total simulated runtime of the baseline."""
        return self.ledger.total_seconds


def _matched_frames(
    recorded: RecordedDetections,
    spec: SelectionQuerySpec,
    udf_registry: UDFRegistry,
    candidate_frames,
) -> list[int]:
    matched = []
    for frame_index in candidate_frames:
        result = recorded.result(int(frame_index))
        if any(
            detection_matches(det, spec, udf_registry) for det in result.detections
        ):
            matched.append(int(frame_index))
    return matched


def naive_selection(
    recorded: RecordedDetections,
    spec: SelectionQuerySpec,
    udf_registry: UDFRegistry,
) -> BaselineSelectionResult:
    """Run the detector on every frame and evaluate the predicates."""
    ledger = RuntimeLedger()
    ledger.charge(recorded.detector.cost, recorded.num_frames)
    matched = _matched_frames(
        recorded, spec, udf_registry, range(recorded.num_frames)
    )
    return BaselineSelectionResult(
        matched_frames=matched,
        detection_calls=recorded.num_frames,
        ledger=ledger,
    )


def noscope_oracle_selection(
    recorded: RecordedDetections,
    spec: SelectionQuerySpec,
    udf_registry: UDFRegistry,
) -> BaselineSelectionResult:
    """Run the detector only on frames the oracle says contain the class.

    The oracle can use label-based filtering only (Section 10.1.1); content,
    temporal and spatial pruning are unavailable to it.
    """
    ledger = RuntimeLedger()
    if spec.object_class is not None:
        candidates = recorded.frames_satisfying({spec.object_class: 1})
    else:
        candidates = range(recorded.num_frames)
    candidates = list(candidates)
    ledger.charge(recorded.detector.cost, len(candidates))
    matched = _matched_frames(recorded, spec, udf_registry, candidates)
    return BaselineSelectionResult(
        matched_frames=matched,
        detection_calls=len(candidates),
        ledger=ledger,
    )
