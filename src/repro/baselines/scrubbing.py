"""Scrubbing baselines (the non-BlazeIt bars of Figures 6-9)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.recorded import RecordedDetections
from repro.metrics.runtime import RuntimeLedger
from repro.scrubbing.baselines import (
    noscope_oracle_scrub,
    random_scrub,
    sequential_scrub,
)
from repro.scrubbing.importance import ScrubbingResult


@dataclass
class BaselineScrubResult:
    """Result of a scrubbing baseline run."""

    frames: list[int]
    detection_calls: int
    ledger: RuntimeLedger
    satisfied: bool

    @property
    def runtime_seconds(self) -> float:
        """Total simulated runtime of the baseline."""
        return self.ledger.total_seconds


def _verify_fn(
    recorded: RecordedDetections,
    min_counts: dict[str, int],
    ledger: RuntimeLedger,
):
    def verify(frame_index: int) -> bool:
        return recorded.satisfies_min_counts(frame_index, min_counts, ledger)

    return verify


def _wrap(result: ScrubbingResult, ledger: RuntimeLedger) -> BaselineScrubResult:
    return BaselineScrubResult(
        frames=sorted(result.frames),
        detection_calls=result.detection_calls,
        ledger=ledger,
        satisfied=result.satisfied,
    )


def naive_scrub(
    recorded: RecordedDetections,
    min_counts: dict[str, int],
    limit: int,
    gap: int = 0,
) -> BaselineScrubResult:
    """Sequential detection scan until the requested number of matches is found."""
    ledger = RuntimeLedger()
    result = sequential_scrub(
        num_frames=recorded.num_frames,
        verify_fn=_verify_fn(recorded, min_counts, ledger),
        limit=limit,
        gap=gap,
    )
    return _wrap(result, ledger)


def random_scrub_baseline(
    recorded: RecordedDetections,
    min_counts: dict[str, int],
    limit: int,
    gap: int = 0,
    rng: np.random.Generator | None = None,
) -> BaselineScrubResult:
    """Random-order detection scan until the requested number of matches is found."""
    ledger = RuntimeLedger()
    result = random_scrub(
        num_frames=recorded.num_frames,
        verify_fn=_verify_fn(recorded, min_counts, ledger),
        limit=limit,
        gap=gap,
        rng=rng,
    )
    return _wrap(result, ledger)


def noscope_oracle_scrub_baseline(
    recorded: RecordedDetections,
    min_counts: dict[str, int],
    limit: int,
    gap: int = 0,
) -> BaselineScrubResult:
    """Detection scan restricted to frames the oracle says contain every class.

    The oracle (free) knows binary presence but not counts, so the detector
    must still verify each candidate frame.
    """
    ledger = RuntimeLedger()
    presence = np.ones(recorded.num_frames, dtype=bool)
    for object_class in min_counts:
        presence &= recorded.presence(object_class)
    result = noscope_oracle_scrub(
        presence_mask=presence,
        verify_fn=_verify_fn(recorded, min_counts, ledger),
        limit=limit,
        gap=gap,
    )
    return _wrap(result, ledger)
