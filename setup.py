"""Setup shim for environments whose setuptools predates PEP 660 editable
wheels (e.g. minimal images without the ``wheel`` package): enables
``python setup.py develop`` / legacy ``pip install -e .``.  All project
metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
