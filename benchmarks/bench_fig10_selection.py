"""Figure 10: end-to-end runtime of the content-based selection query.

The query is Figure 3c: red buses, at least a minimum size, visible for at
least 0.5 s (15 frames at 30 fps) in ``taipei``.  The area threshold is
adapted to the synthetic bus-size distribution (60,000 px instead of the
paper's 100,000 px) so the scaled-down test day contains matching events; the
query structure and every other constant follow the paper.

Three variants, as in the paper: Naive (detection on every frame), NoScope
oracle (detection on frames containing a bus) and BlazeIt (inferred temporal,
content and label filters).  The paper reports 8.4x for the oracle and 54x for
BlazeIt over Naive; the reproduction checks that ordering and that BlazeIt's
false negative rate stays small.
"""

from __future__ import annotations

from benchmarks.reporting import print_table, record, speedup_over
from repro.baselines.selection import naive_selection, noscope_oracle_selection
from repro.workloads.queries import red_bus_selection_query

VIDEO = "taipei"
AREA_THRESHOLD = 60_000
MIN_FRAMES = 15


def group_events(frames: list[int], gap: int = 30) -> list[tuple[int, int]]:
    """Group matched frame indices into events (runs separated by > ``gap``)."""
    events = []
    for frame in sorted(frames):
        if events and frame - events[-1][1] <= gap:
            events[-1] = (events[-1][0], frame)
        else:
            events.append((frame, frame))
    return events


def event_false_negative_rate(
    found_frames: list[int], reference_frames: list[int], gap: int = 30
) -> float:
    """Fraction of reference events with no found frame nearby.

    Selection plans that subsample temporally still catch every event (an
    object visible for >= K frames is seen at least once), so accuracy for
    this experiment is measured per event rather than per frame.
    """
    events = group_events(reference_frames, gap)
    if not events:
        return 0.0
    found = sorted(found_frames)
    missed = 0
    for start, end in events:
        if not any(start - gap <= frame <= end + gap for frame in found):
            missed += 1
    return missed / len(events)


def test_fig10_selection_runtime(bench_env, benchmark):
    def run():
        bundle = bench_env.get(VIDEO)
        query = red_bus_selection_query(
            VIDEO, min_area=AREA_THRESHOLD, min_frames=MIN_FRAMES
        )
        engine = bundle.fresh_engine(bench_env.default_config())
        session = engine.session()
        prepared = session.prepare(query)

        naive = naive_selection(bundle.recorded, prepared.spec, engine.udf_registry)
        oracle = noscope_oracle_selection(
            bundle.recorded, prepared.spec, engine.udf_registry
        )
        blazeit = prepared.execute()

        num_frames = bundle.test.num_frames
        rows = []
        for label, runtime, calls, matched in [
            ("Naive", naive.runtime_seconds, naive.detection_calls, naive.matched_frames),
            ("NoScope (oracle)", oracle.runtime_seconds, oracle.detection_calls, oracle.matched_frames),
            ("BlazeIt", blazeit.runtime_seconds, blazeit.detection_calls, blazeit.matched_frames),
        ]:
            fnr = event_false_negative_rate(matched, naive.matched_frames)
            throughput = num_frames / runtime if runtime > 0 else float("inf")
            rows.append(
                [
                    label,
                    runtime,
                    throughput,
                    calls,
                    len(matched),
                    fnr,
                    speedup_over(naive.runtime_seconds, runtime),
                ]
            )
            record(
                "fig10",
                {
                    "variant": label,
                    "runtime_s": runtime,
                    "throughput_fps": throughput,
                    "detection_calls": calls,
                    "matched_frames": len(matched),
                    "fnr": fnr,
                    "speedup_vs_naive": speedup_over(naive.runtime_seconds, runtime),
                },
            )
        rows.append(
            ["(plan)", blazeit.plan_description, "", "", "", "", ""]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 10 ({VIDEO}): content-based selection (red buses), runtime and FNR",
        ["variant", "runtime (s)", "throughput (fps)", "det calls", "matched", "event FNR", "speedup"],
        rows,
    )
    by_variant = {row[0]: row for row in rows if row[0] != "(plan)"}
    naive_runtime = by_variant["Naive"][1]
    oracle_runtime = by_variant["NoScope (oracle)"][1]
    blazeit_runtime = by_variant["BlazeIt"][1]
    # Shape: Naive > NoScope oracle > BlazeIt, with BlazeIt well ahead of the
    # oracle, and a small event-level false negative rate (the paper reports
    # only false negatives are possible for these queries).
    assert oracle_runtime < naive_runtime
    assert blazeit_runtime < oracle_runtime
    assert blazeit_runtime < naive_runtime / 10
    assert by_variant["BlazeIt"][5] <= 0.5
