"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
(Section 10).  The expensive setup — generating the three "days" of each
scenario, running the simulated detector over the training and held-out days
(the labeled set) and over the test day (the recording used to extrapolate
detection cost, exactly as the paper does) — is performed once per scenario
per session and shared across benchmarks through the ``bench_env`` fixture.

The scale is controlled by the ``REPRO_BENCH_FRAMES`` environment variable
(frames per split, default 6000 — about 3.3 minutes of 30 fps video).  All
reported runtimes are simulated seconds from the runtime ledger; only relative
speedups are meaningful.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.api.session import QuerySession
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.detection.base import ObjectDetector
from repro.detection.simulated import SimulatedDetector
from repro.specialization.trainer import TrainingConfig
from repro.video.scenarios import get_scenario
from repro.video.synthetic import SyntheticVideo

#: Frames generated per split (train / heldout / test) for each scenario.
BENCH_FRAMES = int(os.environ.get("REPRO_BENCH_FRAMES", "6000"))

#: Detector used per video, following Table 3 (FGFA for taipei, Mask R-CNN
#: elsewhere; YOLOv2 was never selected by the paper).
DETECTOR_BY_VIDEO = {
    "taipei": ("fgfa", 0.2),
    "night-street": ("mask_rcnn", 0.8),
    "rialto": ("mask_rcnn", 0.8),
    "grand-canal": ("mask_rcnn", 0.8),
    "amsterdam": ("mask_rcnn", 0.8),
    "archie": ("mask_rcnn", 0.8),
}

#: Training configuration used by every benchmark (the paper trains for one
#: epoch over a large labeled set; the scaled-down videos warrant a few more).
BENCH_TRAINING = TrainingConfig(epochs=3, batch_size=16, min_examples=32)


def make_detector(video_name: str) -> ObjectDetector:
    """The detector configuration Table 3 assigns to a video."""
    kind, threshold = DETECTOR_BY_VIDEO[video_name]
    if kind == "fgfa":
        return SimulatedDetector.fgfa(confidence_threshold=threshold)
    return SimulatedDetector.mask_rcnn(confidence_threshold=threshold)


@dataclass
class ScenarioBundle:
    """Everything the benchmarks need for one scenario."""

    name: str
    train: SyntheticVideo
    heldout: SyntheticVideo
    test: SyntheticVideo
    detector: ObjectDetector
    labeled_set: LabeledSet
    recorded: RecordedDetections
    engine: BlazeIt

    @property
    def primary_class(self) -> str:
        """The object class the paper queries on this video."""
        return get_scenario(self.name).primary_class

    def fresh_engine(self, config: BlazeItConfig) -> BlazeIt:
        """An engine over the same data but with a different configuration.

        Reuses the already-built labeled set and recording so per-benchmark
        configuration changes (e.g. forcing an aggregation method) do not
        re-run the detector.
        """
        engine = BlazeIt(detector=self.detector, config=config)
        engine.register_video(self.name, test_video=self.test, build_labeled_set=False)
        engine.attach_labeled_set(self.name, self.labeled_set)
        engine.attach_recorded(self.name, self.recorded)
        return engine

    def fresh_session(self, config: BlazeItConfig) -> QuerySession:
        """A query session over a fresh engine with the given configuration.

        Benchmarks that execute the same query repeatedly (or under varying
        hints) hold one session so each distinct query is parsed and planned
        once, matching how the engine is meant to serve repeated workloads.
        """
        return self.fresh_engine(config).session(video=self.name)


class BenchEnvironment:
    """Lazily builds and caches one :class:`ScenarioBundle` per scenario."""

    def __init__(self, num_frames: int = BENCH_FRAMES) -> None:
        self.num_frames = num_frames
        self._bundles: dict[str, ScenarioBundle] = {}

    def default_config(self, **overrides) -> BlazeItConfig:
        """The benchmark engine configuration (paper defaults, small videos).

        The MLP specialized model is used throughout the benchmarks: it is the
        closest analogue of the paper's tiny ResNet and the benchmark labeled
        sets are large enough to train it reliably.
        """
        params = {
            "training": BENCH_TRAINING,
            "min_training_positives": 50,
            "specialized_model_type": "mlp",
            "seed": 0,
        }
        params.update(overrides)
        return BlazeItConfig(**params)

    def get(self, name: str) -> ScenarioBundle:
        """Build (or fetch) the bundle for one scenario."""
        if name in self._bundles:
            return self._bundles[name]
        from repro.video.scenarios import generate_scenario

        detector = make_detector(name)
        train = generate_scenario(name, "train", self.num_frames)
        heldout = generate_scenario(name, "heldout", self.num_frames)
        test = generate_scenario(name, "test", self.num_frames)
        labeled_set = LabeledSet.build(train, heldout, detector)
        recorded = RecordedDetections.build(test, detector)
        engine = BlazeIt(detector=detector, config=self.default_config())
        engine.register_video(name, test_video=test, build_labeled_set=False)
        engine.attach_labeled_set(name, labeled_set)
        engine.attach_recorded(name, recorded)
        bundle = ScenarioBundle(
            name=name,
            train=train,
            heldout=heldout,
            test=test,
            detector=detector,
            labeled_set=labeled_set,
            recorded=recorded,
            engine=engine,
        )
        self._bundles[name] = bundle
        return bundle

    def rare_event_threshold(
        self, name: str, object_class: str, limit: int = 10, target_instances: int = 20
    ) -> int:
        """Pick the per-class count threshold for a Table 6 style rare event.

        The paper selects rare events "with at least 10 instances" on each
        (33-hour) test day.  The scaled-down synthetic days are shorter, so
        the threshold is chosen per video as the largest count that still has
        at least ``max(limit, target_instances)`` matching frames — keeping
        the event as rare as the data allows while remaining findable.
        """
        counts = self.get(name).recorded.counts(object_class)
        minimum = max(limit, target_instances)
        best = 1
        for threshold in range(1, int(counts.max(initial=1)) + 1):
            instances = int((counts >= threshold).sum())
            if instances >= minimum:
                best = threshold
            else:
                break
        return best


@pytest.fixture(scope="session")
def bench_env() -> BenchEnvironment:
    """The shared, lazily populated benchmark environment."""
    return BenchEnvironment()


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    """Deterministic generator for benchmark-level sampling decisions."""
    return np.random.default_rng(2024)
