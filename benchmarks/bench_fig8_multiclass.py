"""Figure 8: multi-class scrubbing (at least one bus and at least N cars, taipei).

The paper searches taipei for frames with at least one bus and at least five
cars (63 instances on its test day) and reports end-to-end runtime for Naive,
NoScope oracle, BlazeIt and BlazeIt (indexed).  The joint predicate is
favourable to the oracle (it is more selective), but BlazeIt still wins by a
large factor.  The car threshold is chosen per run so the joint event is rare
on the scaled-down day while keeping at least ``LIMIT`` instances.
"""

from __future__ import annotations

from benchmarks.reporting import print_table, record, speedup_over
from repro.api import QueryHints
from repro.baselines.scrubbing import naive_scrub, noscope_oracle_scrub_baseline
from repro.workloads.queries import multiclass_scrubbing_query

VIDEO = "taipei"
LIMIT = 10


def _choose_car_threshold(bundle, limit: int) -> int:
    """Largest car threshold keeping at least ``limit`` joint instances."""
    cars = bundle.recorded.counts("car")
    buses = bundle.recorded.counts("bus")
    best = 1
    for threshold in range(1, int(cars.max(initial=1)) + 1):
        instances = int(((cars >= threshold) & (buses >= 1)).sum())
        if instances >= limit:
            best = threshold
        else:
            break
    return best


def test_fig8_multiclass_scrubbing(bench_env, benchmark):
    def run():
        bundle = bench_env.get(VIDEO)
        car_threshold = _choose_car_threshold(bundle, LIMIT)
        min_counts = {"bus": 1, "car": car_threshold}
        instances = int(bundle.recorded.frames_satisfying(min_counts).size)
        query = multiclass_scrubbing_query(VIDEO, min_counts, limit=LIMIT, gap=0)

        naive = naive_scrub(bundle.recorded, min_counts, limit=LIMIT)
        oracle = noscope_oracle_scrub_baseline(bundle.recorded, min_counts, limit=LIMIT)
        blazeit = bundle.fresh_session(bench_env.default_config()).execute(query)
        indexed = bundle.fresh_session(bench_env.default_config()).execute(
            query, hints=QueryHints(scrubbing_indexed=True)
        )

        rows = []
        for label, runtime, calls, found in [
            ("Naive", naive.runtime_seconds, naive.detection_calls, len(naive.frames)),
            ("NoScope (oracle)", oracle.runtime_seconds, oracle.detection_calls, len(oracle.frames)),
            ("BlazeIt", blazeit.runtime_seconds, blazeit.detection_calls, len(blazeit.frames)),
            ("BlazeIt (indexed)", indexed.runtime_seconds, indexed.detection_calls, len(indexed.frames)),
        ]:
            rows.append(
                [
                    f"bus>=1 AND car>={car_threshold}",
                    instances,
                    label,
                    runtime,
                    calls,
                    found,
                    speedup_over(naive.runtime_seconds, runtime),
                ]
            )
            record(
                "fig8",
                {
                    "predicate": f"bus>=1 AND car>={car_threshold}",
                    "instances": instances,
                    "variant": label,
                    "runtime_s": runtime,
                    "detection_calls": calls,
                    "found": found,
                },
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 8 ({VIDEO}): multi-class scrubbing runtime, LIMIT {LIMIT}",
        ["predicate", "instances", "variant", "runtime (s)", "det calls", "found", "speedup"],
        rows,
    )
    by_variant = {row[2]: row for row in rows}
    # The oracle benefits from the selective joint predicate, but BlazeIt must
    # still need no more detector calls than it, and the indexed variant is
    # the cheapest of all.
    assert by_variant["BlazeIt"][4] <= by_variant["NoScope (oracle)"][4]
    assert by_variant["NoScope (oracle)"][4] <= by_variant["Naive"][4]
    assert by_variant["BlazeIt (indexed)"][3] <= by_variant["BlazeIt"][3]
    assert by_variant["BlazeIt"][5] == min(LIMIT, by_variant["BlazeIt"][1])
