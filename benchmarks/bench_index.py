"""Persistent index harness: cold (index-less) vs warm (index-served) queries.

Three claims of the ingest-time index are gated here:

1. **Warm queries pay zero detector calls.**  Each workload runs cold on an
   index-less engine against a detector with a simulated per-frame inference
   latency, then warm on a *fresh* engine that attaches the committed index
   (built once with the unpaced reference detector, which shares the paced
   detector's cache-key identity).  Every warm row must report 0 detector
   calls and come out >= 5x faster in wall-clock on the scan workloads.

2. **Sketch proofs skip provably-irrelevant frames.**  On the sparse
   workload — a video where most sketch ranges are provably empty of the
   queried class — the warm run must skip >= 50% of the frames outright
   (synthesized empties / count-zero proofs, no segment decode).

3. **Skipping never changes results (invariant I7).**  Every warm row is
   identity-checked against its cold run: values, frames, hit sets and
   records must match bit-for-bit.  The fingerprint excludes runtime
   accounting — differing detector/cache/index counters are the point.

A warm-start row additionally boots a fresh engine, preloads the shared
cache from the store, and answers the scan with the index view *bypassed* —
still at zero detector calls.

Results are written to ``BENCH_index.json`` at the repo root.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_index.py [--quick] [--frames N]

Exits non-zero when an identity, zero-call, speedup, or skip-rate assertion
fails — which is what the CI perf smoke job gates on.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import QueryHints
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.simulated import SimulatedDetector
from repro.parallel.cache import SharedDetectionCache
from repro.persist import atomic_write_text
from repro.video.scenarios import generate_scenario
from repro.video.synthetic import ObjectClassSpec, SyntheticVideo, VideoSpec

from reporting import print_table

SCENARIO = "rialto"
RANGE_SIZE = 16

#: ``gate`` selects the CI assertion: scan workloads must come out >= 5x
#: faster served from the index ("speedup"); the sparse workload must skip
#: >= 50% of its frames via sketch proofs ("skip_rate").  Every row is
#: additionally gated on bit-identity and zero warm detector calls.
WORKLOADS = [
    ("aggregate_scan", "v", "SELECT FCOUNT(*) FROM v WHERE class = '{cls}'", "speedup"),
    ("selection", "v", "SELECT * FROM v WHERE class = '{cls}'", "speedup"),
    ("exact", "v", "SELECT * FROM v", "speedup"),
    (
        "sparse_count",
        "sparse",
        "SELECT FCOUNT(*) FROM sparse WHERE class = 'car'",
        "skip_rate",
    ),
    (
        "sparse_scrubbing",
        "sparse",
        "SELECT timestamp FROM sparse GROUP BY timestamp "
        "HAVING COUNT(class = 'car') >= 2 LIMIT 5 GAP 10",
        "zero_calls_only",
    ),
]

MIN_SPEEDUP = 5.0
MIN_SKIP_RATE = 0.5


class PacedDetector(SimulatedDetector):
    """Mask R-CNN simulation with a simulated per-frame inference latency.

    Built from the same base configuration as the unpaced reference
    detector, so it shares the index's cache-key identity (name, seed,
    threshold): indexes built fast with the reference detector serve
    queries issued under the paced one.
    """

    def __init__(self, seconds_per_frame: float) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame

    def detect(self, video, frame_index, ledger=None):
        time.sleep(self.seconds_per_frame)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


def sparse_spec(num_frames: int) -> VideoSpec:
    """A video where cars are rare: most sketch ranges are provably empty."""
    return VideoSpec(
        name="sparse",
        width=1280,
        height=720,
        fps=30.0,
        num_frames=num_frames,
        seed=17,
        object_classes=(
            ObjectClassSpec(
                name="car",
                arrival_rate=0.002,
                mean_duration=40.0,
                size_range=(80.0, 200.0),
                color_weights={"white": 2.0, "red": 1.0},
                burstiness=0.4,
                speed=6.0,
            ),
        ),
    )


def videos_for(num_frames: int) -> dict[str, SyntheticVideo]:
    return {
        "v": generate_scenario(SCENARIO, "test", num_frames),
        "sparse": SyntheticVideo.generate(sparse_spec(num_frames)),
    }


def build_engine(
    videos: dict[str, SyntheticVideo],
    detector: SimulatedDetector,
    index_dir: Path | None = None,
    shared_cache: SharedDetectionCache | None = None,
) -> BlazeIt:
    engine = BlazeIt(
        detector=detector,
        config=BlazeItConfig(seed=0),
        shared_cache=shared_cache
        or SharedDetectionCache(capacity_bytes=256 << 20),
        index_dir=index_dir,
    )
    for name, video in videos.items():
        engine.register_video(name, test_video=video)
    return engine


def fingerprint(result) -> tuple:
    """The answer itself — runtime accounting excluded (it differs by design)."""
    out: tuple = (result.kind, result.method, result.stop_reason)
    if hasattr(result, "value"):
        out += (result.value,)
    if hasattr(result, "frames"):
        out += (tuple(result.frames), result.satisfied)
    if hasattr(result, "matched_frames"):
        out += (tuple(result.matched_frames),)
    if hasattr(result, "records"):
        out += (
            tuple(
                (r.frame_index, r.object_class, r.trackid, r.confidence)
                for r in result.records
            ),
        )
    return out


def timed_query(engine: BlazeIt, query: str, hints: QueryHints | None = None):
    started = time.perf_counter()
    result = engine.query(query, rng=np.random.default_rng(1234), hints=hints)
    return time.perf_counter() - started, result


def run_workloads(
    videos: dict[str, SyntheticVideo],
    index_dir: Path,
    seconds_per_frame: float,
) -> list[dict]:
    cls = videos["v"].object_class_names[0]
    entries = []
    for name, video_name, template, gate in WORKLOADS:
        query = template.format(cls=cls)
        cold_engine = build_engine(videos, PacedDetector(seconds_per_frame))
        cold_seconds, cold = timed_query(cold_engine, query)
        # A fresh engine per row: nothing warm except the committed index.
        warm_engine = build_engine(
            videos, PacedDetector(seconds_per_frame), index_dir=index_dir
        )
        warm_seconds, warm = timed_query(warm_engine, query)
        ledger = warm.execution_ledger
        num_frames = videos[video_name].num_frames
        entries.append(
            {
                "workload": name,
                "video": video_name,
                "frames": num_frames,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "speedup": cold_seconds / warm_seconds,
                "cold_detector_calls": cold.execution_ledger.detector_calls,
                "warm_detector_calls": ledger.detector_calls,
                "index_hits": ledger.index_hits,
                "index_skips": ledger.index_skips,
                "skip_rate": ledger.index_skips / num_frames,
                "identical": fingerprint(warm) == fingerprint(cold),
                "gated": gate,
            }
        )
    return entries


def run_warm_start(
    videos: dict[str, SyntheticVideo],
    index_dir: Path,
    seconds_per_frame: float,
) -> dict:
    """Boot a fresh engine, preload the shared cache, bypass the index view."""
    cls = videos["v"].object_class_names[0]
    query = f"SELECT FCOUNT(*) FROM v WHERE class = '{cls}'"
    engine = build_engine(
        videos, PacedDetector(seconds_per_frame), index_dir=index_dir
    )
    started = time.perf_counter()
    report = engine.warm_start()
    warm_start_seconds = time.perf_counter() - started
    seconds, result = timed_query(
        engine, query, hints=QueryHints(use_index=False)
    )
    ledger = result.execution_ledger
    return {
        "frames_loaded": report["frames_loaded"],
        "videos": report["videos"],
        "warm_start_seconds": warm_start_seconds,
        "query_seconds": seconds,
        "detector_calls": ledger.detector_calls,
        "shared_cache_hits": ledger.shared_cache_hits,
        "index_hits": ledger.index_hits,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()
    num_frames = args.frames or (600 if args.quick else 2000)
    seconds_per_frame = 0.001 if args.quick else 0.002

    videos = videos_for(num_frames)
    with TemporaryDirectory(prefix="bench-index-") as tmp:
        index_dir = Path(tmp) / "store"
        # Ingest with the unpaced reference detector (same cache-key
        # identity as the paced query-time detector).
        builder = build_engine(videos, SimulatedDetector.mask_rcnn(), index_dir)
        build_reports = []
        build_started = time.perf_counter()
        for name in videos:
            build_report = builder.build_index(name, range_size=RANGE_SIZE)
            assert build_report["generation"] == 1
            build_reports.append(build_report)
        build_seconds = time.perf_counter() - build_started

        rows = run_workloads(videos, index_dir, seconds_per_frame)
        warm_start = run_warm_start(videos, index_dir, seconds_per_frame)

    print_table(
        "Persistent index: cold (index-less) vs warm (index-served)",
        [
            "workload", "frames", "cold s", "warm s", "speedup",
            "warm calls", "hits", "skips", "skip rate", "identical", "gated",
        ],
        [
            [
                e["workload"],
                e["frames"],
                e["cold_seconds"],
                e["warm_seconds"],
                e["speedup"],
                e["warm_detector_calls"],
                e["index_hits"],
                e["index_skips"],
                e["skip_rate"],
                e["identical"],
                e["gated"],
            ]
            for e in rows
        ],
    )
    print_table(
        "Warm start (shared cache preloaded from the store, index bypassed)",
        ["frames loaded", "load s", "query s", "detector calls", "cache hits"],
        [
            [
                warm_start["frames_loaded"],
                warm_start["warm_start_seconds"],
                warm_start["query_seconds"],
                warm_start["detector_calls"],
                warm_start["shared_cache_hits"],
            ]
        ],
    )

    report = {
        "scenario": SCENARIO,
        "frames": num_frames,
        "range_size": RANGE_SIZE,
        "seconds_per_frame": seconds_per_frame,
        "build_seconds": build_seconds,
        "builds": build_reports,
        "workloads": rows,
        "warm_start": warm_start,
    }
    atomic_write_text(REPO_ROOT / "BENCH_index.json", json.dumps(report, indent=2))

    failures = []
    for e in rows:
        label = e["workload"]
        if not e["identical"]:
            failures.append(f"{label}: index-served result != index-less result")
        if e["warm_detector_calls"] != 0:
            failures.append(
                f"{label}: warm run paid {e['warm_detector_calls']} detector "
                "calls (index-served queries must pay none)"
            )
        if e["gated"] == "speedup" and e["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{label}: index-served speedup {e['speedup']:.2f}x "
                f"< {MIN_SPEEDUP}x over the index-less run"
            )
        if e["gated"] == "skip_rate" and e["skip_rate"] < MIN_SKIP_RATE:
            failures.append(
                f"{label}: sketch proofs skipped only "
                f"{e['skip_rate']:.0%} of frames (need >= {MIN_SKIP_RATE:.0%})"
            )
    if warm_start["detector_calls"] != 0:
        failures.append(
            f"warm start: hot query paid {warm_start['detector_calls']} "
            "detector calls with the index view bypassed"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
