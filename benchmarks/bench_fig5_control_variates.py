"""Figure 5: sample complexity of naive AQP vs control variates.

For each video and each target error in {0.01, 0.02, 0.03, 0.04, 0.05, 0.1}
the benchmark measures the number of detector samples the adaptive sampling
loop needs, with and without the specialized-NN control variate.  The paper
averages 100 runs; the reproduction averages a configurable smaller number
(default 20) to stay fast.

Expected shape: control variates never need more samples on average, and the
reduction grows with the correlation between the specialized NN and the
detector counts (up to ~2x in the paper).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.reporting import print_table, record
from repro.aqp.control_variates import control_variate_estimate
from repro.aqp.sampling import adaptive_sample
from repro.specialization.count_model import CountSpecializedModel

FIGURE5_VIDEOS = ["taipei", "night-street", "rialto", "grand-canal", "amsterdam", "archie"]
ERROR_LEVELS = [0.01, 0.02, 0.03, 0.04, 0.05, 0.1]
RUNS = int(os.environ.get("REPRO_BENCH_CV_RUNS", "20"))
CONFIDENCE = 0.95


def _sample_complexity(bench_env, name: str) -> list[list]:
    bundle = bench_env.get(name)
    object_class = bundle.primary_class
    counts = bundle.recorded.counts(object_class).astype(float)
    value_range = float(counts.max(initial=0) + 1)

    model = CountSpecializedModel(
        object_class, training_config=bench_env.default_config().training
    )
    model.fit(
        bundle.labeled_set.train_features,
        bundle.labeled_set.train_counts(object_class),
    )
    features = bundle.test.frame_features(np.arange(bundle.test.num_frames))
    auxiliary = model.expected_counts(features)
    correlation = float(np.corrcoef(auxiliary, counts)[0, 1]) if counts.std() > 0 else 0.0

    rows = []
    for error in ERROR_LEVELS:
        naive_samples = []
        cv_samples = []
        for run in range(RUNS):
            rng = np.random.default_rng(run)
            naive = adaptive_sample(
                sample_fn=lambda idx: counts[idx],
                population_size=counts.size,
                error_tolerance=error,
                confidence=CONFIDENCE,
                value_range=value_range,
                rng=rng,
            )
            naive_samples.append(naive.samples_used)
            cv = control_variate_estimate(
                sample_fn=lambda idx: counts[idx],
                auxiliary_values=auxiliary,
                error_tolerance=error,
                confidence=CONFIDENCE,
                value_range=value_range,
                rng=np.random.default_rng(run),
            )
            cv_samples.append(cv.samples_used)
        naive_mean = float(np.mean(naive_samples))
        cv_mean = float(np.mean(cv_samples))
        reduction = naive_mean / cv_mean if cv_mean else float("inf")
        rows.append([name, error, naive_mean, cv_mean, reduction, correlation])
        record(
            "fig5",
            {
                "video": name,
                "error": error,
                "naive_samples": naive_mean,
                "control_variate_samples": cv_mean,
                "reduction": reduction,
                "correlation": correlation,
            },
        )
    return rows


@pytest.mark.parametrize("video", FIGURE5_VIDEOS)
def test_fig5_sample_complexity(bench_env, benchmark, video):
    rows = benchmark.pedantic(
        lambda: _sample_complexity(bench_env, video), rounds=1, iterations=1
    )
    print_table(
        f"Figure 5 ({video}): samples needed, naive AQP vs control variates "
        f"(mean of {RUNS} runs)",
        ["video", "error", "naive AQP", "control variates", "reduction", "corr"],
        rows,
    )
    # Shape checks: control variates never cost meaningfully more samples, and
    # tighter error bounds need more samples for both methods.
    for _, _, naive_mean, cv_mean, _, _ in rows:
        assert cv_mean <= naive_mean * 1.1
    naive_by_error = [row[2] for row in rows]
    assert naive_by_error[0] >= naive_by_error[-1]
    # At the tightest error the variance reduction should be visible whenever
    # the specialized NN is reasonably correlated with the detector counts.
    correlation = rows[0][5]
    if correlation > 0.6:
        assert rows[0][4] > 1.1
