"""Figure 6: end-to-end runtime of scrubbing queries (LIMIT 10).

Four variants per video, as in the paper: Naive (sequential detection scan),
NoScope oracle (scan restricted to frames where the oracle reports the class
present), BlazeIt (specialized-NN ranking, training and inference charged) and
BlazeIt (indexed) (ranking reused from a pre-built index).

The per-video count thresholds play the role of Table 6: they are chosen so
the event is rare on the scaled-down test day but still has enough instances
to satisfy the LIMIT (the paper requires at least 10 instances).
"""

from __future__ import annotations

import pytest

from benchmarks.reporting import print_table, record, speedup_over
from repro.api import QueryHints
from repro.baselines.scrubbing import naive_scrub, noscope_oracle_scrub_baseline
from repro.workloads.queries import SCRUBBING_QUERIES, scrubbing_query

LIMIT = 10
FIGURE6_VIDEOS = list(SCRUBBING_QUERIES)

#: Videos where the synthetic feature substrate cannot represent the objects
#: well enough for the specialized ranking to beat the presence oracle
#: (archie: 0.3-second car appearances in a 4K frame; see EXPERIMENTS.md).
#: For these, only the weaker "BlazeIt beats the naive scan" shape is checked.
WEAK_RANKING_VIDEOS = {"archie"}


def _run_video(bench_env, name: str) -> list[list]:
    bundle = bench_env.get(name)
    object_class = SCRUBBING_QUERIES[name].object_class
    threshold = bench_env.rare_event_threshold(name, object_class, limit=LIMIT)
    min_counts = {object_class: threshold}
    instances = int(bundle.recorded.frames_satisfying(min_counts).size)
    query = scrubbing_query(name, object_class, threshold, limit=LIMIT, gap=0)

    naive = naive_scrub(bundle.recorded, min_counts, limit=LIMIT)
    oracle = noscope_oracle_scrub_baseline(bundle.recorded, min_counts, limit=LIMIT)
    blazeit = bundle.fresh_session(bench_env.default_config()).execute(query)
    indexed = bundle.fresh_session(bench_env.default_config()).execute(
        query, hints=QueryHints(scrubbing_indexed=True)
    )

    rows = []
    variants = [
        ("Naive", naive.runtime_seconds, naive.detection_calls, len(naive.frames)),
        ("NoScope (oracle)", oracle.runtime_seconds, oracle.detection_calls, len(oracle.frames)),
        ("BlazeIt", blazeit.runtime_seconds, blazeit.detection_calls, len(blazeit.frames)),
        ("BlazeIt (indexed)", indexed.runtime_seconds, indexed.detection_calls, len(indexed.frames)),
    ]
    for label, runtime, calls, found in variants:
        rows.append(
            [
                name,
                f"{object_class}>={threshold}",
                instances,
                label,
                runtime,
                calls,
                found,
                speedup_over(naive.runtime_seconds, runtime),
            ]
        )
        record(
            "fig6",
            {
                "video": name,
                "predicate": f"{object_class}>={threshold}",
                "instances": instances,
                "variant": label,
                "runtime_s": runtime,
                "detection_calls": calls,
                "found": found,
                "speedup_vs_naive": speedup_over(naive.runtime_seconds, runtime),
            },
        )
    return rows


@pytest.mark.parametrize("video", FIGURE6_VIDEOS)
def test_fig6_scrubbing_runtimes(bench_env, benchmark, video):
    rows = benchmark.pedantic(lambda: _run_video(bench_env, video), rounds=1, iterations=1)
    print_table(
        f"Figure 6 ({video}): scrubbing query runtime, LIMIT {LIMIT}",
        ["video", "predicate", "instances", "variant", "runtime (s)", "det calls", "found", "speedup"],
        rows,
    )
    by_variant = {row[3]: row for row in rows}
    # Every variant returns only true positives, so the found count can only
    # differ when a variant fails to reach the limit.
    target = min(LIMIT, by_variant["Naive"][2])
    assert by_variant["Naive"][6] == target
    assert by_variant["BlazeIt"][6] == target
    # Shape: BlazeIt needs fewer detector calls than the naive scan and is
    # competitive with the (free, perfectly accurate) presence oracle; the
    # indexed variant is at least as fast as BlazeIt.  On the scaled-down
    # videos the events are far less rare than in the paper (tens of
    # instances in thousands rather than millions of frames), so the margins
    # are smaller; videos whose objects the feature substrate cannot
    # represent (WEAK_RANKING_VIDEOS) only need to beat the naive scan.
    assert by_variant["BlazeIt"][5] < by_variant["Naive"][5]
    if video not in WEAK_RANKING_VIDEOS:
        assert by_variant["BlazeIt"][5] <= max(
            by_variant["NoScope (oracle)"][5] * 2, by_variant["Naive"][5] / 3
        )
    assert by_variant["BlazeIt (indexed)"][4] <= by_variant["BlazeIt"][4]
