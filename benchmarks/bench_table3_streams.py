"""Table 3: video streams and object labels used in the evaluation.

Regenerates the per-stream statistics table (occupancy, average object
duration, distinct object count, resolution, fps) for the synthetic
counterparts of the six evaluation videos and compares them with the targets
taken from the paper.
"""

from __future__ import annotations

from benchmarks.reporting import print_table, record
from repro.video.scenarios import SCENARIOS, get_scenario

#: Occupancy / duration / distinct-count targets from Table 3 of the paper
#: (per video and object class).  Distinct counts are per 33-hour day in the
#: paper and therefore not comparable in absolute terms at the scaled-down
#: video length; they are reported but not checked.
PAPER_TARGETS = {
    ("taipei", "bus"): {"occupancy": 0.119, "duration": 2.82},
    ("taipei", "car"): {"occupancy": 0.644, "duration": 1.43},
    ("night-street", "car"): {"occupancy": 0.281, "duration": 3.94},
    ("rialto", "boat"): {"occupancy": 0.899, "duration": 10.7},
    ("grand-canal", "boat"): {"occupancy": 0.577, "duration": 9.50},
    ("amsterdam", "car"): {"occupancy": 0.447, "duration": 7.88},
    ("archie", "car"): {"occupancy": 0.518, "duration": 0.30},
}


def test_table3_stream_statistics(bench_env, benchmark):
    """Generate every scenario's test day and report its Table 3 statistics."""

    def run():
        rows = []
        for name in sorted(SCENARIOS):
            bundle = bench_env.get(name)
            scenario = get_scenario(name)
            for class_spec in scenario.classes:
                object_class = class_spec.name
                target = PAPER_TARGETS.get((name, object_class), {})
                occupancy = bundle.test.occupancy(object_class)
                duration = bundle.test.mean_duration_seconds(object_class)
                rows.append(
                    [
                        name,
                        object_class,
                        occupancy,
                        target.get("occupancy", float("nan")),
                        duration,
                        target.get("duration", float("nan")),
                        bundle.test.distinct_count(object_class),
                        f"{bundle.test.spec.width}x{bundle.test.spec.height}",
                        bundle.test.fps,
                        bundle.test.num_frames,
                    ]
                )
                record(
                    "table3",
                    {
                        "video": name,
                        "class": object_class,
                        "occupancy": occupancy,
                        "paper_occupancy": target.get("occupancy"),
                        "duration_s": duration,
                        "paper_duration_s": target.get("duration"),
                    },
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 3: video streams and object labels (generated vs paper targets)",
        [
            "video",
            "object",
            "occupancy",
            "paper occ",
            "avg dur (s)",
            "paper dur",
            "distinct",
            "resol",
            "fps",
            "frames",
        ],
        rows,
    )

    # Sanity guards on the shapes that matter: the dense scenes stay dense and
    # the sparse scenes stay sparse.
    stats = {(r[0], r[1]): r[2] for r in rows}
    assert stats[("rialto", "boat")] > stats[("night-street", "car")]
    assert stats[("taipei", "car")] > stats[("taipei", "bus")]
