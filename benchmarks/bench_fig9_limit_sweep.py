"""Figure 9: sample complexity as a function of the number of requested clips.

For the multi-class taipei query (at least one bus and at least N cars) the
paper sweeps the LIMIT from 1 to ~30 and reports the number of frames each
strategy examines.  BlazeIt's biased sampling is up to five orders of
magnitude more sample-efficient than the naive scan in the paper; the
reproduction checks that the gap is large and grows (or at least does not
shrink) with the requested number of clips.
"""

from __future__ import annotations

import numpy as np

from benchmarks.reporting import print_table, record
from repro.baselines.scrubbing import naive_scrub, noscope_oracle_scrub_baseline
from repro.scrubbing.importance import importance_scrub
from repro.specialization.multiclass import MultiClassCountModel

VIDEO = "taipei"
REQUESTED_CLIPS = [1, 5, 10, 15, 20, 25, 30]


def test_fig9_samples_vs_requested_clips(bench_env, benchmark):
    def run():
        bundle = bench_env.get(VIDEO)
        cars = bundle.recorded.counts("car")
        buses = bundle.recorded.counts("bus")
        # Pick the car threshold so that at least max(REQUESTED_CLIPS) joint
        # instances exist, mirroring the paper's 63-instance query.
        car_threshold = 1
        for threshold in range(1, int(cars.max(initial=1)) + 1):
            if int(((cars >= threshold) & (buses >= 1)).sum()) >= max(REQUESTED_CLIPS):
                car_threshold = threshold
            else:
                break
        min_counts = {"bus": 1, "car": car_threshold}
        instances = int(bundle.recorded.frames_satisfying(min_counts).size)

        model = MultiClassCountModel(
            ["bus", "car"], training_config=bench_env.default_config().training
        )
        model.fit(
            bundle.labeled_set.train_features,
            {
                "bus": bundle.labeled_set.train_counts("bus"),
                "car": bundle.labeled_set.train_counts("car"),
            },
        )
        features = bundle.test.frame_features(np.arange(bundle.test.num_frames))
        scores = model.score_conjunction(features, min_counts)

        def verify(frame: int) -> bool:
            return bool(cars[frame] >= car_threshold and buses[frame] >= 1)

        rows = []
        for limit in REQUESTED_CLIPS:
            effective_limit = min(limit, instances)
            if effective_limit == 0:
                continue
            naive = naive_scrub(bundle.recorded, min_counts, limit=effective_limit)
            oracle = noscope_oracle_scrub_baseline(
                bundle.recorded, min_counts, limit=effective_limit
            )
            blazeit = importance_scrub(scores, verify, limit=effective_limit)
            rows.append(
                [
                    limit,
                    effective_limit,
                    naive.detection_calls,
                    oracle.detection_calls,
                    blazeit.detection_calls,
                ]
            )
            record(
                "fig9",
                {
                    "requested": limit,
                    "effective": effective_limit,
                    "predicate": f"bus>=1 AND car>={car_threshold}",
                    "naive_samples": naive.detection_calls,
                    "noscope_samples": oracle.detection_calls,
                    "blazeit_samples": blazeit.detection_calls,
                },
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 9 ({VIDEO}): samples examined vs requested clips",
        ["requested", "effective", "naive", "NoScope (oracle)", "BlazeIt"],
        rows,
    )
    assert rows, "the taipei test day has no joint bus/car events"
    for _, _, naive_calls, oracle_calls, blazeit_calls in rows:
        assert blazeit_calls <= oracle_calls
        assert oracle_calls <= naive_calls
    # The BlazeIt advantage over the naive scan should be at least an order of
    # magnitude somewhere in the sweep.
    assert max(row[2] / max(row[4], 1) for row in rows) > 10
