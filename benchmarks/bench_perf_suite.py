"""Perf-regression harness: scalar reference vs the vectorized batch pipeline.

Times the hot paths of the reproduction — cheap feature extraction, batched
detection, and end-to-end execution of the four query classes — once through
the scalar per-frame reference implementations and once through the
vectorized/batched pipeline, on fixed-seed synthetic videos.  Both paths must
produce bit-for-bit identical results; the wall-clock ratio is the recorded
speedup.  Results are written to ``BENCH_perf.json`` at the repo root.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py [--quick] [--frames N]

Exits non-zero when any suite entry shows the batched path slower than the
scalar reference, or a result mismatch — which is what the CI perf smoke job
gates on.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.simulated import SimulatedDetector
from repro.persist import atomic_write_text
from repro.specialization.trainer import TrainingConfig
from repro.video.scenarios import generate_scenario

from reporting import print_table

#: The scenario timed by every entry: the densest of the six streams, so the
#: per-frame scalar loops carry a representative object load.
SCENARIO = "rialto"

#: Queries exercising the four query classes (``{cls}`` is the scenario's
#: primary object class).
QUERIES = {
    "aggregate": (
        "SELECT FCOUNT(*) FROM v WHERE class = '{cls}' "
        "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
    ),
    "scrubbing": (
        "SELECT timestamp FROM v GROUP BY timestamp "
        "HAVING COUNT(class = '{cls}') >= 2 LIMIT 10 GAP 30"
    ),
    "selection": "SELECT * FROM v WHERE class = '{cls}'",
    "exact": "SELECT * FROM v",
}


def fingerprint(kind: str, result) -> tuple:
    """The observable output of a query result, for scalar/batched comparison."""
    if kind == "aggregate":
        return (result.value, result.samples_used, result.method)
    if kind == "scrubbing":
        return (tuple(result.frames), result.satisfied, result.method)
    records = tuple(
        (r.frame_index, r.object_class, r.trackid, r.confidence)
        for r in result.records
    )
    if kind == "selection":
        return (tuple(result.matched_frames), records, result.method)
    return (records, result.method)


def build_engine(num_frames: int, batched: bool) -> BlazeIt:
    """A fully registered engine over fresh fixed-seed videos of ``SCENARIO``.

    ``batched`` selects the execution mode: the vectorized pipeline, or the
    scalar per-frame reference (``batched_execution=False`` plus the scalar
    feature path on every split).  Videos are regenerated per engine so each
    mode starts with cold feature caches.
    """
    config = BlazeItConfig(
        training=TrainingConfig(epochs=3, batch_size=16, min_examples=32),
        min_training_positives=50,
        specialized_model_type="mlp",
        batched_execution=batched,
        seed=0,
    )
    splits = {
        split: generate_scenario(SCENARIO, split, num_frames)
        for split in ("train", "heldout", "test")
    }
    if not batched:
        for video in splits.values():
            video.use_vectorized_features = False
    engine = BlazeIt(detector=SimulatedDetector.mask_rcnn(), config=config)
    engine.register_video(
        "v",
        test_video=splits["test"],
        train_video=splits["train"],
        heldout_video=splits["heldout"],
    )
    return engine


def time_feature_extraction(num_frames: int) -> dict:
    """Cold full-video feature extraction, scalar loop vs columnar kernel."""
    indices = np.arange(num_frames)
    scalar_video = generate_scenario(SCENARIO, "test", num_frames)
    started = time.perf_counter()
    scalar = scalar_video.frame_features_reference(indices)
    scalar_seconds = time.perf_counter() - started
    batched_video = generate_scenario(SCENARIO, "test", num_frames)
    started = time.perf_counter()
    batched = batched_video.frame_features(indices)
    batched_seconds = time.perf_counter() - started
    return {
        "name": "feature_extraction",
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "identical": bool(np.array_equal(scalar, batched)),
    }


def time_query_class(kind: str, num_frames: int) -> dict:
    """End-to-end wall-clock of one query class, scalar vs batched engine.

    Each mode runs against its own freshly built engine (cold feature and
    detection caches), with the same fixed RNG stream, and must produce
    bit-for-bit identical results.
    """
    from repro.video.scenarios import get_scenario

    query = QUERIES[kind].format(cls=get_scenario(SCENARIO).primary_class)
    timings = {}
    outputs = {}
    for mode, batched in (("scalar", False), ("batched", True)):
        engine = build_engine(num_frames, batched)
        session = engine.session(video="v")
        prepared = session.prepare(query)
        started = time.perf_counter()
        result = prepared.execute(rng=np.random.default_rng(0))
        timings[mode] = time.perf_counter() - started
        outputs[mode] = fingerprint(kind, result)
    return {
        "name": kind,
        "scalar_seconds": timings["scalar"],
        "batched_seconds": timings["batched"],
        "speedup": timings["scalar"] / timings["batched"],
        "identical": outputs["scalar"] == outputs["batched"],
    }


def run_suite(num_frames: int, quick: bool) -> dict:
    entries = [time_feature_extraction(num_frames)]
    for kind in ("aggregate", "scrubbing", "selection", "exact"):
        entries.append(time_query_class(kind, num_frames))
    return {
        "suite": "bench_perf_suite",
        "scenario": SCENARIO,
        "frames_per_split": num_frames,
        "quick": quick,
        "entries": entries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer frames per split",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="frames per split (default: 6000, or 1500 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    num_frames = args.frames or (1500 if args.quick else 6000)

    report = run_suite(num_frames, args.quick)
    atomic_write_text(args.output, json.dumps(report, indent=2) + "\n")

    rows = [
        [
            entry["name"],
            entry["scalar_seconds"],
            entry["batched_seconds"],
            f"{entry['speedup']:.1f}x",
            "yes" if entry["identical"] else "NO",
        ]
        for entry in report["entries"]
    ]
    print_table(
        f"Perf suite: scalar vs batched ({SCENARIO}, {num_frames} frames/split)",
        ["entry", "scalar s", "batched s", "speedup", "identical"],
        rows,
    )
    print(f"report written to {args.output}")

    failures = [
        entry["name"]
        for entry in report["entries"]
        if entry["speedup"] < 1.0 or not entry["identical"]
    ]
    if failures:
        print(
            "PERF REGRESSION: batched path slower or diverging on: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
