"""Observability overhead harness: tracing must be ~free, and exactly free off.

Two claims of the observability layer are gated here:

1. **Zero overhead when disabled.**  With tracing off (the default), the
   execution context carries ``tracer=None`` and every instrumentation site
   reduces to one attribute check returning a shared null context manager.
   The gate is structural — a disabled run must produce no tracer, attach no
   :class:`~repro.obs.profile.ExecutionProfile`, and be byte-identical (via
   :func:`~repro.service.protocol.result_fingerprint`) to itself across
   repeats — plus the measured off-vs-off spread is reported as the noise
   floor the enabled gate is read against.

2. **<= 5% overhead when enabled.**  The same scan workload with
   ``trace=True`` must stay within ``MAX_ENABLED_OVERHEAD`` of the disabled
   wall time (min-of-repeats on both sides, fresh engine per run so every
   run pays identical cold detector work), while remaining byte-identical
   to the disabled result and carrying a full per-operator profile.

Results are written to ``BENCH_obs.json`` at the repo root.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_observability.py [--quick] [--frames N]

Exits non-zero when the overhead gate, an identity check, or a profile
structure check fails — which is what the CI perf smoke job gates on.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.simulated import SimulatedDetector
from repro.persist import atomic_write_text
from repro.service.protocol import result_fingerprint
from repro.video.scenarios import generate_scenario

from reporting import print_table

SCENARIO = "rialto"
REPEATS = 3
#: Enabled-tracing wall time may exceed disabled by at most this fraction.
MAX_ENABLED_OVERHEAD = 0.05
#: The scan workload: every frame is verified, so per-frame span overhead —
#: if any existed — would be maximally visible.
QUERY = "SELECT * FROM v"


class PacedDetector(SimulatedDetector):
    """Mask R-CNN simulation with a simulated per-frame inference latency.

    The sleep stands in for real per-frame detector latency; it makes the
    wall time dominated by (identical) detector work, so the measured delta
    between traced and untraced runs is the instrumentation itself plus
    noise, not scheduler luck on a microsecond-scale loop.
    """

    def __init__(self, seconds_per_frame: float) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame

    def detect(self, video, frame_index, ledger=None):
        time.sleep(self.seconds_per_frame)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


def run_once(
    num_frames: int, seconds_per_frame: float, trace: bool
) -> tuple[float, object]:
    """One cold execution of the scan workload; returns (wall, result).

    A fresh engine per run keeps the detection caches cold, so traced and
    untraced runs pay exactly the same detector work.
    """
    engine = BlazeIt(
        detector=PacedDetector(seconds_per_frame),
        config=BlazeItConfig(seed=0),
    )
    engine.register_video(
        "v", test_video=generate_scenario(SCENARIO, "test", num_frames)
    )
    with engine.session() as session:
        prepared = session.prepare(QUERY)
        started = time.perf_counter()
        result = prepared.execute(rng=np.random.default_rng(1234), trace=trace)
        return time.perf_counter() - started, result


def measure(
    num_frames: int, seconds_per_frame: float, trace: bool
) -> tuple[list[float], list[object]]:
    walls, results = [], []
    for _ in range(REPEATS):
        wall, result = run_once(num_frames, seconds_per_frame, trace)
        walls.append(wall)
        results.append(result)
    return walls, results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()
    num_frames = args.frames or (400 if args.quick else 1200)
    seconds_per_frame = 0.0005 if args.quick else 0.001

    off_walls, off_results = measure(num_frames, seconds_per_frame, trace=False)
    on_walls, on_results = measure(num_frames, seconds_per_frame, trace=True)

    off_best, on_best = min(off_walls), min(on_walls)
    overhead = on_best / off_best - 1.0
    noise_floor = max(off_walls) / off_best - 1.0

    off_prints = {result_fingerprint(r) for r in off_results}
    on_prints = {result_fingerprint(r) for r in on_results}
    identical = off_prints == on_prints and len(off_prints) == 1

    profile = on_results[0].profile
    executed_rows = (
        sum(
            1
            for row in profile.operators
            if row.actual_detector_calls is not None
        )
        if profile is not None
        else 0
    )

    print_table(
        f"Tracing overhead on the scan workload ({num_frames} frames, "
        f"min of {REPEATS})",
        ["mode", "wall s", "overhead", "profile", "identical"],
        [
            ["disabled", off_best, f"noise {noise_floor:+.1%}", "none", True],
            [
                "enabled",
                on_best,
                f"{overhead:+.1%}",
                f"{executed_rows} ops",
                identical,
            ],
        ],
    )

    report = {
        "scenario": SCENARIO,
        "query": QUERY,
        "frames": num_frames,
        "seconds_per_frame": seconds_per_frame,
        "repeats": REPEATS,
        "disabled_walls": off_walls,
        "enabled_walls": on_walls,
        "disabled_best": off_best,
        "enabled_best": on_best,
        "enabled_overhead": overhead,
        "noise_floor": noise_floor,
        "max_enabled_overhead": MAX_ENABLED_OVERHEAD,
        "identical": identical,
        "profiled_operators": executed_rows,
    }
    atomic_write_text(REPO_ROOT / "BENCH_obs.json", json.dumps(report, indent=2))

    failures = []
    if not identical:
        failures.append("traced result fingerprint != untraced (determinism broken)")
    if any(r.profile is not None for r in off_results):
        failures.append("disabled run attached an ExecutionProfile (not zero-cost)")
    if profile is None:
        failures.append("enabled run attached no ExecutionProfile")
    elif executed_rows < 1:
        failures.append("enabled run's profile recorded no executed operator")
    if overhead > MAX_ENABLED_OVERHEAD:
        failures.append(
            f"tracing overhead {overhead:+.1%} exceeds "
            f"{MAX_ENABLED_OVERHEAD:.0%} on the scan workload"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
