"""Figure 11: factor analysis and lesion study of the selection filters.

The factor analysis adds filter classes one at a time (Naive, +Spatial,
+Temporal, +Content, +Label); the lesion study removes each class from the
combined plan.  The query is the Figure 3c red-bus query with an added
region-of-interest constraint (``xmax(mask) < 960``) so the spatial filter
class participates, mirroring the paper's use of an ROI for this experiment.

Expected shape: every added filter class improves throughput, and removing
any class from the combined plan degrades it.
"""

from __future__ import annotations

from benchmarks.reporting import print_table, record
from repro.api import QueryHints
from repro.baselines.selection import naive_selection

VIDEO = "taipei"
AREA_THRESHOLD = 60_000
MIN_FRAMES = 15
ROI_XMAX = 960

#: Cumulative filter sets for the factor analysis, in the paper's order.
FACTOR_STEPS = [
    ("Naive", set()),
    ("+Spatial", {"spatial"}),
    ("+Temporal", {"spatial", "temporal"}),
    ("+Content", {"spatial", "temporal", "content"}),
    ("+Label", {"spatial", "temporal", "content", "label"}),
]

ALL_CLASSES = {"spatial", "temporal", "content", "label"}


def _query() -> str:
    return (
        f"SELECT * FROM {VIDEO} "
        f"WHERE class = 'bus' "
        f"AND redness(content) >= 17.5 "
        f"AND area(mask) > {AREA_THRESHOLD} "
        f"AND xmax(mask) < {ROI_XMAX} "
        f"GROUP BY trackid HAVING COUNT(*) > {MIN_FRAMES}"
    )


def test_fig11_factor_analysis_and_lesion_study(bench_env, benchmark):
    def run():
        bundle = bench_env.get(VIDEO)
        # Filter training time is excluded here: the factor analysis isolates
        # the effectiveness of each filter class, and at the scaled-down video
        # length the (one-off) training cost would otherwise dominate the
        # per-query runtime it is meant to explain.
        engine = bundle.fresh_engine(
            bench_env.default_config(include_training_time=False)
        )
        session = engine.session()
        query = _query()
        spec = engine.analyze(query)
        naive = naive_selection(bundle.recorded, spec, engine.udf_registry)
        num_frames = bundle.test.num_frames

        def throughput(runtime: float) -> float:
            return num_frames / runtime if runtime > 0 else float("inf")

        factor_rows = []
        for label, classes in FACTOR_STEPS:
            result = session.execute(
                query, hints=QueryHints(selection_filter_classes=frozenset(classes))
            )
            factor_rows.append(
                [
                    "factor",
                    label,
                    result.runtime_seconds,
                    throughput(result.runtime_seconds),
                    throughput(result.runtime_seconds) / throughput(naive.runtime_seconds),
                    result.detection_calls,
                ]
            )
            record(
                "fig11_factor",
                {
                    "step": label,
                    "runtime_s": result.runtime_seconds,
                    "throughput_fps": throughput(result.runtime_seconds),
                    "detection_calls": result.detection_calls,
                },
            )

        lesion_rows = []
        combined = session.execute(
            query, hints=QueryHints(selection_filter_classes=frozenset(ALL_CLASSES))
        )
        lesion_rows.append(
            [
                "lesion",
                "Combined",
                combined.runtime_seconds,
                throughput(combined.runtime_seconds),
                1.0,
                combined.detection_calls,
            ]
        )
        for removed in ("spatial", "temporal", "content", "label"):
            classes = ALL_CLASSES - {removed}
            result = session.execute(
                query, hints=QueryHints(selection_filter_classes=frozenset(classes))
            )
            lesion_rows.append(
                [
                    "lesion",
                    f"-{removed.capitalize()}",
                    result.runtime_seconds,
                    throughput(result.runtime_seconds),
                    throughput(result.runtime_seconds) / throughput(combined.runtime_seconds),
                    result.detection_calls,
                ]
            )
            record(
                "fig11_lesion",
                {
                    "removed": removed,
                    "runtime_s": result.runtime_seconds,
                    "throughput_fps": throughput(result.runtime_seconds),
                    "detection_calls": result.detection_calls,
                },
            )
        return factor_rows + lesion_rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 11 ({VIDEO}): factor analysis (cumulative) and lesion study",
        ["study", "configuration", "runtime (s)", "throughput (fps)", "relative", "det calls"],
        rows,
    )
    factor = {row[1]: row for row in rows if row[0] == "factor"}
    lesion = {row[1]: row for row in rows if row[0] == "lesion"}

    # Factor analysis: each added filter class never hurts, and the full stack
    # is much faster than naive.
    order = [label for label, _ in FACTOR_STEPS]
    for earlier, later in zip(order, order[1:], strict=False):
        assert factor[later][2] <= factor[earlier][2] * 1.05
    assert factor["+Label"][2] < factor["Naive"][2] / 5

    # Lesion study: removing any filter class slows the combined plan down
    # (or at worst leaves it unchanged when that class contributed nothing).
    for removed in ("-Spatial", "-Temporal", "-Content", "-Label"):
        assert lesion[removed][2] >= lesion["Combined"][2] * 0.95
    assert any(
        lesion[removed][2] > lesion["Combined"][2] * 1.2
        for removed in ("-Spatial", "-Temporal", "-Content", "-Label")
    )
