"""Console reporting helpers for the benchmark harness.

Every benchmark prints the rows / series the corresponding paper table or
figure reports, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
evaluation section in text form.  Results are also appended to an in-memory
registry that the harness can dump at the end of the session.
"""

from __future__ import annotations

from collections.abc import Sequence

#: All rows printed during this session, keyed by experiment id.  Useful when
#: post-processing results (e.g. to refresh EXPERIMENTS.md).
RESULTS: dict[str, list[dict]] = {}


def record(experiment: str, row: dict) -> None:
    """Store one result row under an experiment id."""
    RESULTS.setdefault(experiment, []).append(row)


def format_value(value) -> str:
    """Format one cell for console output."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print an aligned text table with a title banner."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True))
    print()
    print("=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
    print()


def speedup_over(baseline_seconds: float, seconds: float) -> float:
    """Speedup factor of ``seconds`` relative to ``baseline_seconds``."""
    if seconds <= 0:
        return float("inf")
    return baseline_seconds / seconds
