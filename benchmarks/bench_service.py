"""Query service benchmark: wire fidelity, throughput and time-to-first-event.

Boots a real service (``python -m repro.service``) as a subprocess, then
gates two claims:

1. **Wire fidelity.**  All four query classes executed over HTTP against
   the server are byte-identical (canonical serialized form, wall-clock
   excluded) to the same call sequence against an identically-seeded
   in-process engine.

2. **Concurrent throughput.**  With a paced detector (per-frame simulated
   inference latency — the resource concurrent queries overlap), aggregate
   throughput at 4 concurrent clients must be >= 2x the single-client
   serialized rate.  Time-to-first-event percentiles at 1/4/16 clients are
   reported alongside.

Results are written to ``BENCH_service.json`` at the repo root.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--frames N]

Exits non-zero when fidelity or the throughput gate fails — what the CI
service job gates on.
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.persist import atomic_write_text
from repro.service.client import ServiceClient
from repro.service.protocol import result_fingerprint
from repro.video.scenarios import generate_scenario

from reporting import print_table

SCENARIO = "rialto"
SEED = 7
MIN_SPEEDUP_AT_4 = 2.0
CLIENT_COUNTS = [1, 4, 16]
QUERIES_PER_CLIENT = 3


def launch_server(
    frames: int, latency: float, slots: int
) -> tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro.service`` and wait for its listening banner."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--scenario",
            SCENARIO,
            "--frames",
            str(frames),
            "--seed",
            str(SEED),
            "--port",
            "0",
            "--slots",
            str(slots),
            "--queue-depth",
            "64",
            "--detector-latency",
            str(latency),
            "--heartbeat",
            "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=str(REPO_ROOT),
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"service exited during startup (code {process.poll()})"
            )
        match = re.search(r"listening on http://([\d.]+):(\d+)", line)
        if match:
            # Drain stdout in the background so the server never blocks on a
            # full pipe.
            threading.Thread(
                target=lambda: [None for _ in process.stdout], daemon=True
            ).start()
            return process, match.group(1), int(match.group(2))
    raise RuntimeError("service did not report a listening address in time")


def reference_fingerprints(frames: int, queries: list[str]) -> list[str]:
    """The in-process ground truth: same seed, same registration, one session."""
    engine = BlazeIt(config=BlazeItConfig(seed=SEED))
    engine.register_scenario(SCENARIO, name="v", num_frames=frames)
    with engine.session() as session:
        return [
            result_fingerprint(session.prepare(query).execute())
            for query in queries
        ]


def run_smoke(host: str, port: int, frames: int) -> list[dict]:
    cls = generate_scenario(SCENARIO, "test", 32).object_class_names[0]
    queries = [
        ("aggregate", f"SELECT FCOUNT(*) FROM v WHERE class = '{cls}'"),
        ("selection", f"SELECT * FROM v WHERE class = '{cls}'"),
        ("exact", "SELECT * FROM v"),
        (
            "scrubbing",
            f"SELECT timestamp FROM v GROUP BY timestamp "
            f"HAVING COUNT(class = '{cls}') >= 1 LIMIT 5 GAP 30",
        ),
    ]
    refs = reference_fingerprints(frames, [q for _, q in queries])
    client = ServiceClient(host, port, timeout=600.0)
    client.create_tenant("smoke")
    session_id = client.create_session("smoke")
    entries = []
    for (name, query), ref in zip(queries, refs, strict=True):
        started = time.perf_counter()
        result = client.execute(session_id, query)
        entries.append(
            {
                "workload": name,
                "identical": result_fingerprint(result) == ref,
                "detector_calls": result.execution_ledger.detector_calls,
                "wire_seconds": time.perf_counter() - started,
            }
        )
    return entries


def run_throughput(host: str, port: int, clients: int) -> dict:
    """``clients`` concurrent clients, each its own tenant+session, each
    running ``QUERIES_PER_CLIENT`` detector-bound scans."""
    cls = generate_scenario(SCENARIO, "test", 32).object_class_names[0]
    query = f"SELECT * FROM v WHERE class = '{cls}'"
    ttfe: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        try:
            client = ServiceClient(host, port, timeout=600.0)
            client.create_tenant(f"bench-{clients}-{index}")
            session_id = client.create_session(f"bench-{clients}-{index}")
            for _ in range(QUERIES_PER_CLIENT):
                started = time.perf_counter()
                status = client.submit(session_id, query=query, wait=False)
                first_event_at: float | None = None
                for _index, _event in client.events(
                    str(status["query_id"]), decode=False
                ):
                    if first_event_at is None:
                        first_event_at = time.perf_counter()
                with lock:
                    ttfe.append((first_event_at or time.perf_counter()) - started)
        except Exception as exc:  # report, don't hang the bench
            with lock:
                errors.append(f"client {index}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise RuntimeError("; ".join(errors))
    total = clients * QUERIES_PER_CLIENT
    ttfe.sort()
    return {
        "clients": clients,
        "queries": total,
        "seconds": elapsed,
        "queries_per_second": total / elapsed,
        "ttfe_p50": statistics.median(ttfe),
        "ttfe_p95": ttfe[min(len(ttfe) - 1, int(0.95 * len(ttfe)))],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()
    frames = args.frames or (300 if args.quick else 800)
    latency = 0.002 if args.quick else 0.003

    process, host, port = launch_server(frames, latency, slots=16)
    try:
        smoke = run_smoke(host, port, frames)
        throughput = [run_throughput(host, port, n) for n in CLIENT_COUNTS]
    finally:
        process.terminate()
        process.wait(timeout=30)

    baseline = throughput[0]["queries_per_second"]
    for entry in throughput:
        entry["speedup_vs_1_client"] = entry["queries_per_second"] / baseline

    print_table(
        f"Wire fidelity ({frames} frames, seed {SEED})",
        ["workload", "identical", "detector calls", "wire s"],
        [
            [e["workload"], e["identical"], e["detector_calls"], e["wire_seconds"]]
            for e in smoke
        ],
    )
    print_table(
        f"Service throughput ({QUERIES_PER_CLIENT} queries/client, "
        f"{latency * 1000:g} ms/frame detector)",
        ["clients", "queries", "seconds", "qps", "speedup", "ttfe p50", "ttfe p95"],
        [
            [
                e["clients"],
                e["queries"],
                e["seconds"],
                e["queries_per_second"],
                e["speedup_vs_1_client"],
                e["ttfe_p50"],
                e["ttfe_p95"],
            ]
            for e in throughput
        ],
    )

    report = {
        "scenario": SCENARIO,
        "frames": frames,
        "seed": SEED,
        "detector_latency": latency,
        "smoke": smoke,
        "throughput": throughput,
    }
    atomic_write_text(REPO_ROOT / "BENCH_service.json", json.dumps(report, indent=2))

    failures = []
    for entry in smoke:
        if not entry["identical"]:
            failures.append(f"{entry['workload']}: wire result != in-process")
    at_4 = next(e for e in throughput if e["clients"] == 4)
    if at_4["speedup_vs_1_client"] < MIN_SPEEDUP_AT_4:
        failures.append(
            f"4-client throughput only {at_4['speedup_vs_1_client']:.2f}x the "
            f"serialized rate (need >= {MIN_SPEEDUP_AT_4}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
