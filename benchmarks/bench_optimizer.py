"""Cost-based optimizer benchmark: cost-chosen vs forced plans per query class.

For each of the four query classes (aggregate, scrubbing, selection, exact)
this benchmark executes the cost-chosen plan and every forced alternative
(``QueryHints.force_plan``) under the same RNG stream, then compares executed
detector calls and simulated runtime.  The headline claim checked: the chosen
plan's detector-call count is no worse than every contract-honouring forced
alternative on every query class (and than *every* alternative on at least
3 of the 4 classes — forcing ``specialized_rewrite`` may do fewer calls than
the chosen plan exactly when it would violate the query's error bound, which
is why Algorithm 1's gate rejected it).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.reporting import print_table, record
from repro.api import QueryHints
from repro.workloads.queries import SCRUBBING_QUERIES

VIDEO = "night-street"

#: Forced alternatives whose executed results honour the query's accuracy
#: contract (``specialized_rewrite`` bypasses the accuracy gate).
CONTRACT_FORCED = {
    "aggregate": ["exact", "naive_aqp", "control_variates"],
    "scrubbing": ["exhaustive"],
    "selection": ["exhaustive"],
    "exact": ["exhaustive"],
}
#: All forced alternatives, contract-honouring or not.
ALL_FORCED = {
    "aggregate": ["exact", "naive_aqp", "specialized_rewrite", "control_variates"],
    **{kind: alts for kind, alts in CONTRACT_FORCED.items() if kind != "aggregate"},
}


def _queries(bench_env) -> dict[str, str]:
    object_class = SCRUBBING_QUERIES[VIDEO].object_class
    threshold = bench_env.rare_event_threshold(VIDEO, object_class, limit=10)
    return {
        "aggregate": (
            f"SELECT FCOUNT(*) FROM {VIDEO} WHERE class='{object_class}' "
            "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
        ),
        "scrubbing": (
            f"SELECT timestamp FROM {VIDEO} GROUP BY timestamp "
            f"HAVING SUM(class='{object_class}') >= {threshold} LIMIT 10"
        ),
        "selection": (
            f"SELECT * FROM {VIDEO} WHERE class='{object_class}' "
            "AND redness(content) >= 17.5"
        ),
        "exact": f"SELECT * FROM {VIDEO}",
    }


def _run(bench_env) -> list[list]:
    session = bench_env.get(VIDEO).fresh_session(bench_env.default_config())
    rows = []
    for kind, text in _queries(bench_env).items():
        variants = [("cost-chosen", None)] + [
            (f"forced:{name}", name) for name in ALL_FORCED[kind]
        ]
        for label, forced in variants:
            hints = QueryHints(force_plan=forced) if forced else None
            result = session.execute(
                text, hints=hints, rng=np.random.default_rng(1234)
            )
            row = [
                kind,
                label,
                result.method,
                result.execution_ledger.detector_calls,
                result.runtime_seconds,
            ]
            rows.append(row)
            record(
                "optimizer",
                {
                    "query_class": kind,
                    "variant": label,
                    "method": result.method,
                    "detector_calls": result.execution_ledger.detector_calls,
                    "runtime_s": result.runtime_seconds,
                },
            )
    return rows


def test_cost_chosen_vs_forced(bench_env, benchmark):
    rows = benchmark.pedantic(lambda: _run(bench_env), rounds=1, iterations=1)
    print_table(
        f"Cost-based optimizer ({VIDEO}): chosen vs forced plans",
        ["query class", "variant", "method", "det calls", "runtime (s)"],
        rows,
    )
    calls = {(row[0], row[1]): row[3] for row in rows}
    classes_beating_all = 0
    for kind in CONTRACT_FORCED:
        chosen = calls[(kind, "cost-chosen")]
        # Hard guarantee: no contract-honouring alternative beats the chosen
        # plan on detector calls under the same seed.
        for name in CONTRACT_FORCED[kind]:
            assert chosen <= calls[(kind, f"forced:{name}")], (
                f"{kind}: chosen plan used {chosen} detector calls, "
                f"forced {name} used {calls[(kind, f'forced:{name}')]}"
            )
        if all(
            chosen <= calls[(kind, f"forced:{name}")] for name in ALL_FORCED[kind]
        ):
            classes_beating_all += 1
    # Acceptance shape: chosen <= every forced alternative (including the
    # gate-bypassing rewrite) on at least 3 of the 4 query classes.
    assert classes_beating_all >= 3, (
        f"chosen plan beat every forced alternative on only "
        f"{classes_beating_all} of 4 query classes"
    )


if __name__ == "__main__":  # pragma: no cover - manual run convenience
    import sys

    sys.exit(pytest.main([__file__, "-x", "-q", "-s", "--benchmark-disable"]))
