"""Figure 4: end-to-end runtime of aggregate queries.

Five variants per video, as in the paper: Naive (detection on every frame),
NoScope oracle, Naive AQP, BlazeIt (training time included) and BlazeIt with
training excluded ("no train" / pre-indexed specialized NN).  All queries
target an absolute error of 0.1 at 95% confidence on the frame-averaged count
of the video's primary class.

The paper reports 2,000-8,500x speedups for BlazeIt over Naive on the five
videos where query rewriting applies; the reproduction checks the ordering
(BlazeIt (no train) <= BlazeIt < AQP-or-oracle < Naive) and multi-order-of-
magnitude gaps rather than absolute factors.
"""

from __future__ import annotations

import pytest

from benchmarks.reporting import print_table, record, speedup_over
from repro.baselines.aggregates import (
    naive_aggregate,
    naive_aqp_aggregate,
    noscope_oracle_aggregate,
)
from repro.workloads.queries import aggregate_query

#: The five videos of Figure 4 (archie is excluded there because its
#: specialized NN cannot hit the accuracy target; it appears in Figure 5).
FIGURE4_VIDEOS = ["taipei", "night-street", "rialto", "grand-canal", "amsterdam"]

ERROR_TOLERANCE = 0.1
CONFIDENCE = 0.95


def _run_video(bench_env, name: str) -> list[list]:
    import numpy as np

    bundle = bench_env.get(name)
    object_class = bundle.primary_class
    truth = bundle.recorded.mean_count(object_class)
    query = aggregate_query(name, object_class, ERROR_TOLERANCE, CONFIDENCE)

    naive = naive_aggregate(bundle.recorded, object_class)
    oracle = noscope_oracle_aggregate(bundle.recorded, object_class)
    aqp = naive_aqp_aggregate(
        bundle.recorded,
        object_class,
        error_tolerance=ERROR_TOLERANCE,
        confidence=CONFIDENCE,
        rng=np.random.default_rng(0),
    )

    blazeit_session = bundle.fresh_session(
        bench_env.default_config(include_training_time=True)
    )
    blazeit = blazeit_session.execute(query)
    no_train_session = bundle.fresh_session(
        bench_env.default_config(include_training_time=False)
    )
    no_train = no_train_session.execute(query)

    rows = []
    variants = [
        ("Naive", naive.value, naive.runtime_seconds, "exact"),
        ("NoScope (oracle)", oracle.value, oracle.runtime_seconds, "oracle"),
        ("AQP (naive)", aqp.value, aqp.runtime_seconds, "sampling"),
        ("BlazeIt", blazeit.value, blazeit.runtime_seconds, blazeit.method),
        ("BlazeIt (no train)", no_train.value, no_train.runtime_seconds, no_train.method),
    ]
    for label, value, runtime, method in variants:
        rows.append(
            [
                name,
                label,
                value,
                abs(value - truth),
                runtime,
                speedup_over(naive.runtime_seconds, runtime),
                method,
            ]
        )
        record(
            "fig4",
            {
                "video": name,
                "variant": label,
                "value": value,
                "true_value": truth,
                "runtime_s": runtime,
                "speedup_vs_naive": speedup_over(naive.runtime_seconds, runtime),
                "method": method,
            },
        )
    return rows


@pytest.mark.parametrize("video", FIGURE4_VIDEOS)
def test_fig4_aggregate_runtimes(bench_env, benchmark, video):
    rows = benchmark.pedantic(lambda: _run_video(bench_env, video), rounds=1, iterations=1)
    print_table(
        f"Figure 4 ({video}): aggregate query runtime, error 0.1 @ 95%",
        ["video", "variant", "estimate", "abs err", "runtime (s)", "speedup", "method"],
        rows,
    )
    by_variant = {row[1]: row for row in rows}
    naive_runtime = by_variant["Naive"][4]
    blazeit_runtime = by_variant["BlazeIt"][4]
    no_train_runtime = by_variant["BlazeIt (no train)"][4]

    # Shape checks from the paper: BlazeIt beats the naive baseline by a large
    # factor, the no-train variant is at least as fast as BlazeIt, and every
    # variant respects the 0.1 error bound (with slack for the statistical
    # nature of the guarantee).
    assert blazeit_runtime < naive_runtime / 10
    assert no_train_runtime <= blazeit_runtime
    assert by_variant["BlazeIt"][3] <= 3 * ERROR_TOLERANCE
    assert by_variant["AQP (naive)"][3] <= 3 * ERROR_TOLERANCE
