"""Table 4: absolute error of query rewriting with specialized NNs.

The paper reports the average error of the specialized-NN rewrite over three
runs for the five Figure 4 videos, all within the requested 0.1 bound.  The
reproduction forces the rewrite strategy (different training seeds per run)
and reports the mean absolute error of the frame-averaged count against the
recorded detector output on the unseen day.
"""

from __future__ import annotations

import numpy as np

from benchmarks.reporting import print_table, record
from repro.core.config import AggregateMethod
from repro.workloads.queries import aggregate_query

TABLE4_VIDEOS = ["taipei", "night-street", "rialto", "grand-canal", "amsterdam"]
PAPER_ERRORS = {
    "taipei": 0.043,
    "night-street": 0.022,
    "rialto": 0.031,
    "grand-canal": 0.081,
    "amsterdam": 0.050,
}
RUNS = 3
ERROR_TOLERANCE = 0.1


def test_table4_rewrite_error(bench_env, benchmark):
    def run():
        rows = []
        for name in TABLE4_VIDEOS:
            bundle = bench_env.get(name)
            object_class = bundle.primary_class
            truth = bundle.recorded.mean_count(object_class)
            query = aggregate_query(name, object_class, ERROR_TOLERANCE)
            errors = []
            for seed in range(RUNS):
                session = bundle.fresh_session(
                    bench_env.default_config(
                        aggregate_method=AggregateMethod.SPECIALIZED_REWRITE,
                        include_training_time=False,
                        seed=seed,
                    )
                )
                result = session.execute(query)
                errors.append(abs(result.value - truth))
            mean_error = float(np.mean(errors))
            rows.append([name, object_class, truth, mean_error, PAPER_ERRORS[name]])
            record(
                "table4",
                {
                    "video": name,
                    "class": object_class,
                    "true_fcount": truth,
                    "mean_abs_error": mean_error,
                    "paper_error": PAPER_ERRORS[name],
                },
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table 4: query-rewriting error (mean of {RUNS} runs, target <= 0.1)",
        ["video", "object", "true FCOUNT", "measured |err|", "paper |err|"],
        rows,
    )
    # The paper's headline: every video stays within the requested bound.
    # Allow modest slack for the smaller synthetic videos.
    for row in rows:
        assert row[3] <= 2 * ERROR_TOLERANCE
    # And most videos should genuinely meet the bound.
    within = sum(1 for row in rows if row[3] <= ERROR_TOLERANCE)
    assert within >= len(rows) - 1
