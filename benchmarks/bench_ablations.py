"""Ablations of design choices called out in DESIGN.md.

These go beyond the paper's own figures and probe three decisions:

1. **Control-variate coefficient** — the per-round estimated optimal
   coefficient versus the fixed ``c = -1`` often used in practice versus no
   control variate at all.
2. **Specialized-model capacity** — softmax regression (the default) versus
   the small MLP, measuring held-out counting error and training cost.
3. **Scrubbing signal** — the paper's per-class ``P(count >= N)`` sum versus
   a joint binary classifier trained directly on the conjunction (the
   class-imbalance-sensitive alternative the paper argues against).
"""

from __future__ import annotations

import numpy as np

from benchmarks.reporting import print_table, record
from repro.aqp.control_variates import control_variate_estimate
from repro.aqp.sampling import adaptive_sample
from repro.scrubbing.importance import importance_scrub
from repro.specialization.binary_model import BinaryPresenceModel
from repro.specialization.count_model import CountSpecializedModel
from repro.specialization.multiclass import MultiClassCountModel

VIDEO = "taipei"
RUNS = 10
ERROR = 0.02
CONFIDENCE = 0.95


def test_ablation_control_variate_coefficient(bench_env, benchmark):
    """Estimated-optimal vs fixed coefficient vs plain sampling."""

    def run():
        bundle = bench_env.get(VIDEO)
        object_class = bundle.primary_class
        counts = bundle.recorded.counts(object_class).astype(float)
        value_range = float(counts.max(initial=0) + 1)
        model = CountSpecializedModel(
            object_class, training_config=bench_env.default_config().training
        )
        model.fit(
            bundle.labeled_set.train_features,
            bundle.labeled_set.train_counts(object_class),
        )
        auxiliary = model.expected_counts(
            bundle.test.frame_features(np.arange(bundle.test.num_frames))
        )

        def mean_samples(strategy: str) -> float:
            samples = []
            for run_index in range(RUNS):
                rng = np.random.default_rng(run_index)
                if strategy == "none":
                    result = adaptive_sample(
                        sample_fn=lambda idx: counts[idx],
                        population_size=counts.size,
                        error_tolerance=ERROR,
                        confidence=CONFIDENCE,
                        value_range=value_range,
                        rng=rng,
                    )
                else:
                    result = control_variate_estimate(
                        sample_fn=lambda idx: counts[idx],
                        auxiliary_values=auxiliary,
                        error_tolerance=ERROR,
                        confidence=CONFIDENCE,
                        value_range=value_range,
                        rng=rng,
                        fixed_coefficient=-1.0 if strategy == "fixed" else None,
                    )
                samples.append(result.samples_used)
            return float(np.mean(samples))

        rows = []
        for label, strategy in [
            ("no control variate", "none"),
            ("fixed c = -1", "fixed"),
            ("estimated optimal c", "optimal"),
        ]:
            samples = mean_samples(strategy)
            rows.append([label, ERROR, samples])
            record("ablation_cv", {"strategy": label, "error": ERROR, "samples": samples})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: control-variate coefficient ({VIDEO}, error {ERROR})",
        ["strategy", "error target", "mean samples"],
        rows,
    )
    by_label = {row[0]: row[2] for row in rows}
    assert by_label["estimated optimal c"] <= by_label["no control variate"] * 1.05
    assert by_label["estimated optimal c"] <= by_label["fixed c = -1"] * 1.05


def test_ablation_specialized_model_capacity(bench_env, benchmark):
    """Softmax regression vs tiny MLP for the counting task."""

    def run():
        bundle = bench_env.get(VIDEO)
        object_class = bundle.primary_class
        truth = bundle.labeled_set.heldout_counts(object_class)
        rows = []
        for model_type in ("softmax", "mlp"):
            model = CountSpecializedModel(
                object_class,
                model_type=model_type,
                training_config=bench_env.default_config().training,
            )
            model.fit(
                bundle.labeled_set.train_features,
                bundle.labeled_set.train_counts(object_class),
            )
            predictions = model.predict_counts(bundle.labeled_set.heldout_features)
            expected = model.expected_counts(bundle.labeled_set.heldout_features)
            mean_error = abs(float(predictions.mean()) - float(truth.mean()))
            mae = float(np.abs(predictions - truth).mean())
            correlation = (
                float(np.corrcoef(expected, truth)[0, 1]) if truth.std() > 0 else 0.0
            )
            rows.append([model_type, mean_error, mae, correlation])
            record(
                "ablation_capacity",
                {
                    "model": model_type,
                    "mean_error": mean_error,
                    "mae": mae,
                    "correlation": correlation,
                },
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: specialized model capacity ({VIDEO}, held-out day)",
        ["model", "|mean err|", "per-frame MAE", "correlation"],
        rows,
    )
    for _, mean_error, _, correlation in rows:
        assert mean_error < 0.3
        assert correlation > 0.3


def test_ablation_scrubbing_signal(bench_env, benchmark):
    """Per-class count heads vs a joint binary classifier for rare conjunctions."""

    def run():
        bundle = bench_env.get(VIDEO)
        cars = bundle.recorded.counts("car")
        buses = bundle.recorded.counts("bus")
        car_threshold = 1
        for threshold in range(1, int(cars.max(initial=1)) + 1):
            if int(((cars >= threshold) & (buses >= 1)).sum()) >= 10:
                car_threshold = threshold
            else:
                break
        min_counts = {"bus": 1, "car": car_threshold}
        limit = min(10, int(bundle.recorded.frames_satisfying(min_counts).size))
        features = bundle.test.frame_features(np.arange(bundle.test.num_frames))

        def verify(frame: int) -> bool:
            return bool(cars[frame] >= car_threshold and buses[frame] >= 1)

        # Paper's choice: per-class count heads, conjunction score by summing.
        heads = MultiClassCountModel(
            ["bus", "car"], training_config=bench_env.default_config().training
        )
        heads.fit(
            bundle.labeled_set.train_features,
            {
                "bus": bundle.labeled_set.train_counts("bus"),
                "car": bundle.labeled_set.train_counts("car"),
            },
        )
        head_scores = heads.score_conjunction(features, min_counts)
        head_result = importance_scrub(head_scores, verify, limit=limit)

        # Alternative: a joint binary classifier on the conjunction label.
        joint_labels = (
            (bundle.labeled_set.train_counts("car") >= car_threshold)
            & (bundle.labeled_set.train_counts("bus") >= 1)
        )
        joint = BinaryPresenceModel(
            "joint", training_config=bench_env.default_config().training
        )
        joint.fit(bundle.labeled_set.train_features, joint_labels)
        joint_scores = joint.predict_proba_present(features)
        joint_result = importance_scrub(joint_scores, verify, limit=limit)

        rows = [
            ["per-class heads (paper)", limit, head_result.detection_calls,
             len(head_result.frames)],
            ["joint binary classifier", limit, joint_result.detection_calls,
             len(joint_result.frames)],
        ]
        for row in rows:
            record(
                "ablation_scrub_signal",
                {"signal": row[0], "limit": row[1], "detection_calls": row[2]},
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: scrubbing signal ({VIDEO}, bus AND car conjunction)",
        ["signal", "limit", "det calls", "found"],
        rows,
    )
    # Both signals must find the events; the paper's per-class formulation is
    # expected to be at least competitive despite the class imbalance.
    assert rows[0][3] == rows[0][1]
    assert rows[0][2] <= rows[1][2] * 2.0
