"""Table 5: specialized NNs do not simply learn the average.

The paper swaps the held-out and test days and shows the specialized NN
returns different (and accurate) counts for each day, demonstrating it reacts
to content rather than memorising a constant.  The reproduction evaluates the
same trained model on two different unseen days of each video and reports the
predicted and actual frame-averaged counts per day.
"""

from __future__ import annotations

import numpy as np

from benchmarks.reporting import print_table, record
from repro.core.recorded import RecordedDetections
from repro.specialization.count_model import CountSpecializedModel
from repro.video.scenarios import generate_scenario

TABLE5_VIDEOS = ["taipei", "night-street", "rialto", "grand-canal"]


def test_table5_specialized_nns_track_daily_variation(bench_env, benchmark):
    def run():
        rows = []
        for name in TABLE5_VIDEOS:
            bundle = bench_env.get(name)
            object_class = bundle.primary_class
            model = CountSpecializedModel(
                object_class, training_config=bench_env.default_config().training
            )
            model.fit(
                bundle.labeled_set.train_features,
                bundle.labeled_set.train_counts(object_class),
            )
            # Day 1: the regular test day.  Day 2: a second unseen day.
            day2 = generate_scenario(name, "test2", bench_env.num_frames)
            day2_recorded = RecordedDetections.build(day2, bundle.detector)
            days = [
                ("day 1", bundle.test, bundle.recorded),
                ("day 2", day2, day2_recorded),
            ]
            row = [name, object_class]
            predicted = []
            actual = []
            for _, video, recorded in days:
                features = video.frame_features(np.arange(video.num_frames))
                predicted.append(model.mean_count(features))
                actual.append(recorded.mean_count(object_class))
            row.extend([predicted[0], actual[0], predicted[1], actual[1]])
            rows.append(row)
            record(
                "table5",
                {
                    "video": name,
                    "pred_day1": predicted[0],
                    "actual_day1": actual[0],
                    "pred_day2": predicted[1],
                    "actual_day2": actual[1],
                },
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 5: specialized NN counts on two different unseen days",
        ["video", "object", "pred (day 1)", "actual (day 1)", "pred (day 2)", "actual (day 2)"],
        rows,
    )
    # The model must track per-day variation: predictions stay close to the
    # actual value of *each* day, and whenever the two days differ materially
    # the prediction moves in the same direction.
    for _, _, pred1, actual1, pred2, actual2 in rows:
        assert abs(pred1 - actual1) < 0.35
        assert abs(pred2 - actual2) < 0.35
    material = [
        (pred1, actual1, pred2, actual2)
        for _, _, pred1, actual1, pred2, actual2 in rows
        if abs(actual1 - actual2) >= 0.05
    ]
    tracking = sum(
        1
        for pred1, actual1, pred2, actual2 in material
        if (pred1 - pred2) * (actual1 - actual2) > 0
    )
    if material:
        assert tracking >= len(material) - 1
