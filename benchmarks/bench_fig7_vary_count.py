"""Figure 7: sample complexity when searching for at least N cars in taipei.

The paper sweeps N from 1 to 6 and reports the number of frames each strategy
must examine (detector calls) to find 10 events.  The naive and NoScope-oracle
strategies get more expensive as N grows (higher counts are rarer), while
BlazeIt's biased sampling stays nearly flat until the events become extremely
rare.
"""

from __future__ import annotations

import numpy as np

from benchmarks.reporting import print_table, record
from repro.baselines.scrubbing import naive_scrub, noscope_oracle_scrub_baseline
from repro.scrubbing.importance import importance_scrub
from repro.specialization.count_model import CountSpecializedModel

VIDEO = "taipei"
OBJECT_CLASS = "car"
LIMIT = 10


def test_fig7_sample_complexity_vs_count(bench_env, benchmark):
    def run():
        bundle = bench_env.get(VIDEO)
        counts = bundle.recorded.counts(OBJECT_CLASS)
        max_count = int(counts.max(initial=1))

        model = CountSpecializedModel(
            OBJECT_CLASS, training_config=bench_env.default_config().training
        )
        model.fit(
            bundle.labeled_set.train_features,
            bundle.labeled_set.train_counts(OBJECT_CLASS),
        )
        features = bundle.test.frame_features(np.arange(bundle.test.num_frames))

        rows = []
        for n in range(1, max_count + 1):
            min_counts = {OBJECT_CLASS: n}
            instances = int((counts >= n).sum())
            if instances == 0:
                break
            limit = min(LIMIT, instances)
            naive = naive_scrub(bundle.recorded, min_counts, limit=limit)
            oracle = noscope_oracle_scrub_baseline(bundle.recorded, min_counts, limit=limit)
            scores = model.prob_at_least(features, n)
            blazeit = importance_scrub(
                scores,
                verify_fn=lambda frame: counts[frame] >= n,
                limit=limit,
            )
            rows.append(
                [
                    n,
                    instances,
                    naive.detection_calls,
                    oracle.detection_calls,
                    blazeit.detection_calls,
                ]
            )
            record(
                "fig7",
                {
                    "min_cars": n,
                    "instances": instances,
                    "naive_samples": naive.detection_calls,
                    "noscope_samples": oracle.detection_calls,
                    "blazeit_samples": blazeit.detection_calls,
                },
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Figure 7 ({VIDEO}): samples to find {LIMIT} frames with >= N cars",
        ["N cars", "instances", "naive", "NoScope (oracle)", "BlazeIt"],
        rows,
    )
    assert len(rows) >= 3, "expected the taipei test day to reach at least 3 simultaneous cars"
    # Naive sample complexity grows as the event gets rarer; BlazeIt stays
    # well below naive for the rarer settings.
    assert rows[-1][2] >= rows[0][2]
    for row in rows[1:]:
        assert row[4] <= row[2]
    assert rows[-1][4] < rows[-1][2]
