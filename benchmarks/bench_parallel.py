"""Parallel execution harness: backend x workload speedups and cache reuse.

Three claims of the parallel execution engine are gated here:

1. **Thread-backend speedup on latency-bound detectors.**  The scan-bound
   workloads (aggregate, selection, exact over a fixed-seed scenario) run
   sequentially and at 4 thread workers against a detector with a simulated
   per-frame inference latency — the ``time.sleep`` stands in for the
   GPU/RPC latency a real detector has, which is the resource shard workers
   overlap.  Must come out >= 2x faster, bit-for-bit identical.

2. **Process-backend speedup on GIL-bound detectors.**  A detector whose
   per-frame cost is spent *holding the GIL* (a ``ctypes.PyDLL`` foreign
   call, standing in for pure-Python pre/post-processing) shows no thread
   speedup at all — that row is gated at <= 1.2x as documentation of the
   ceiling.  The same workload routed through the cost-based optimizer picks
   the multiprocess shard executor and must come out >= 2x faster at 4
   workers, spawn startup included, still bit-for-bit identical.

3. **Cost-model routing and shared-cache reuse.**  The importance-ranked
   scrubbing query routes its workers through session hints over an engine
   *with* catalog statistics, so the optimizer's parallelism model prices
   the shard startup against the handful of detector calls it estimates —
   and declines.  Gated at no-regression (it used to collapse to 0.44x when
   force-sharded).  Separately, a warm shared cross-query cache must pay
   >= 5x fewer detector calls than the cold run.

Results are written to ``BENCH_parallel.json`` at the repo root.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick] [--frames N]

Exits non-zero when a speedup, ceiling, or cache assertion fails, or when a
parallel result deviates from the sequential one — which is what the CI
perf smoke job gates on.
"""

from __future__ import annotations

import argparse
import ctypes
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.labeled_set import LabeledSet
from repro.detection.simulated import SimulatedDetector
from repro.parallel.cache import SharedDetectionCache
from repro.persist import atomic_write_text
from repro.video.scenarios import generate_scenario

from reporting import print_table

SCENARIO = "rialto"
WORKERS = 4

#: Queries over the scenario's primary class.  ``gate`` is the assertion the
#: CI job applies: the scan-bound workloads must come out >= 2x faster under
#: explicit parallelism ("speedup"), while the importance-ranked scrubbing
#: query routes its workers through session hints over a statistics-bearing
#: engine — the cost model declines sharding it — and must therefore *not
#: regress* ("no_regression").
WORKLOADS = [
    ("aggregate_scan", "SELECT FCOUNT(*) FROM v WHERE class = '{cls}'", "speedup"),
    ("selection", "SELECT * FROM v WHERE class = '{cls}'", "speedup"),
    ("exact", "SELECT * FROM v", "speedup"),
    (
        "scrubbing",
        "SELECT timestamp FROM v GROUP BY timestamp "
        "HAVING COUNT(class = '{cls}') >= 1 LIMIT 10 GAP 30",
        "no_regression",
    ),
]

MIN_SPEEDUP = 2.0
#: Hint-routed workloads may not run slower than sequential (small tolerance
#: for wall-clock noise on a ~0.2s query).
NO_REGRESSION = 0.85
#: The GIL-bound thread row exists to document the ceiling: anything above
#: this is measurement noise, not parallelism.
MAX_GIL_THREAD_SPEEDUP = 1.2
MIN_CACHE_REDUCTION = 5.0

#: The GIL-bound rows use a fixed size in both --quick and full mode: the
#: process backend's cost is dominated by worker spawn (~1-2s of interpreter
#: startup per child on a small box), so the sequential run must be long
#: enough for 4-way overlap to amortize it with margin over MIN_SPEEDUP.
GIL_FRAMES = 800
GIL_MICROS_PER_FRAME = 30_000  # 30ms/frame -> ~24s sequential


class PacedDetector(SimulatedDetector):
    """Mask R-CNN simulation with a simulated per-frame inference latency.

    The sleep models the time a real detector spends on the accelerator per
    frame — wall-clock the driver can overlap across shard workers, unlike
    the GIL-bound Python arithmetic of the noise model.
    """

    def __init__(self, seconds_per_frame: float) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame

    def detect(self, video, frame_index, ledger=None):
        time.sleep(self.seconds_per_frame)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


class GilBoundDetector(SimulatedDetector):
    """Mask R-CNN simulation whose per-frame cost holds the GIL.

    ``ctypes.PyDLL`` calls foreign code *without* releasing the GIL — the
    stand-in for detectors dominated by pure-Python pre/post-processing.
    Thread workers cannot overlap this; spawned process workers can.  The
    class is module-level and carries only value-type state so it pickles
    into spawn children.
    """

    gil_bound = True

    def __init__(self, micros_per_frame: int = GIL_MICROS_PER_FRAME) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.micros_per_frame = micros_per_frame

    def _hold_gil(self, frames: int) -> None:
        libc = ctypes.PyDLL(None)  # PyDLL: the call runs with the GIL held
        libc.usleep(ctypes.c_uint(self.micros_per_frame * frames))

    def detect(self, video, frame_index, ledger=None):
        self._hold_gil(1)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        self._hold_gil(len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


def build_engine(
    num_frames: int,
    detector: SimulatedDetector,
    shared_cache: SharedDetectionCache | None = None,
    with_statistics: bool = False,
) -> BlazeIt:
    engine = BlazeIt(
        detector=detector,
        config=BlazeItConfig(seed=0),
        shared_cache=shared_cache,
    )
    engine.register_video("v", test_video=generate_scenario(SCENARIO, "test", num_frames))
    if with_statistics:
        # Label the train/heldout splits with the *unpaced* reference
        # detector: statistics feed the sharder and the parallelism model,
        # never results, so the pacing wrapper would only slow labeling.
        split_frames = max(256, num_frames // 4)
        labeled = LabeledSet.build(
            generate_scenario(SCENARIO, "train", split_frames),
            generate_scenario(SCENARIO, "heldout", split_frames),
            SimulatedDetector.mask_rcnn(),
        )
        engine.attach_labeled_set("v", labeled)
    return engine


def fingerprint(result) -> tuple:
    out: tuple = (result.kind, result.method, result.detection_calls)
    if hasattr(result, "value"):
        out += (result.value,)
    if hasattr(result, "frames"):
        out += (tuple(result.frames), result.satisfied)
    if hasattr(result, "matched_frames"):
        out += (tuple(result.matched_frames),)
    if hasattr(result, "records"):
        out += (tuple((r.frame_index, r.object_class, r.trackid) for r in result.records),)
    return out


def primary_class(num_frames: int) -> str:
    video = generate_scenario(SCENARIO, "test", min(num_frames, 64))
    return video.object_class_names[0]


def timed_execution(
    engine: BlazeIt,
    query: str,
    parallelism: int,
    hint_routed: bool = False,
    backend: str | None = None,
):
    """Run one query, returning (wall seconds, result, routed decision).

    ``hint_routed`` passes the worker count through session hints — the
    production default path, where the cost model may pick a backend or
    decline sharding — instead of the explicit per-call arguments, which
    are always honoured as given.
    """
    from repro import QueryHints

    hints = QueryHints(parallelism=parallelism) if hint_routed else None
    with engine.session(hints=hints) as session:
        prepared = session.prepare(query)
        decision = prepared.explain().parallelism if hint_routed else ""
        started = time.perf_counter()
        result = prepared.execute(
            rng=np.random.default_rng(1234),
            parallelism=None if hint_routed else parallelism,
            backend=None if hint_routed else backend,
        )
        return time.perf_counter() - started, result, decision


def entry(
    name: str,
    backend: str,
    num_frames: int,
    sequential: tuple,
    parallel: tuple,
    gate: str,
    hint_routed: bool = False,
) -> dict:
    sequential_seconds, sequential_result, _ = sequential
    parallel_seconds, parallel_result, decision = parallel
    return {
        "workload": name,
        "backend": backend,
        "frames": num_frames,
        "workers": WORKERS,
        "hint_routed": hint_routed,
        "routed_decision": decision,
        "sequential_seconds": sequential_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": sequential_seconds / parallel_seconds,
        "identical": fingerprint(sequential_result) == fingerprint(parallel_result),
        "detector_calls": parallel_result.execution_ledger.detector_calls,
        "gated": gate,
    }


def run_speedup_suite(num_frames: int, seconds_per_frame: float) -> list[dict]:
    cls = primary_class(num_frames)
    entries = []
    for name, template, gate in WORKLOADS:
        query = template.format(cls=cls)
        hint_routed = gate == "no_regression"
        engine = build_engine(
            num_frames,
            PacedDetector(seconds_per_frame),
            with_statistics=hint_routed,
        )
        sequential = timed_execution(engine, query, parallelism=1)
        parallel = timed_execution(
            engine,
            query,
            parallelism=WORKERS,
            hint_routed=hint_routed,
            backend=None if hint_routed else "threads",
        )
        entries.append(
            entry(name, "threads", num_frames, sequential, parallel, gate, hint_routed)
        )
    return entries


def run_gil_suite() -> list[dict]:
    """Sequential vs threads vs processes on a GIL-holding detector.

    The thread row is forced (the optimizer would never pick threads for a
    ``gil_bound`` detector) and documents the ceiling; the process row goes
    through hint routing so the cost model itself picks the multiprocess
    backend, spawn cost priced in.
    """
    engine = build_engine(GIL_FRAMES, GilBoundDetector(), with_statistics=True)
    query = "SELECT * FROM v"
    sequential = timed_execution(engine, query, parallelism=1)
    threaded = timed_execution(engine, query, parallelism=WORKERS, backend="threads")
    processed = timed_execution(engine, query, parallelism=WORKERS, hint_routed=True)
    return [
        entry("gil_bound_scan", "threads", GIL_FRAMES, sequential, threaded, "gil_ceiling"),
        entry(
            "gil_bound_scan",
            "processes",
            GIL_FRAMES,
            sequential,
            processed,
            "speedup",
            hint_routed=True,
        ),
    ]


def run_cache_suite(num_frames: int, seconds_per_frame: float) -> dict:
    cls = primary_class(num_frames)
    query = f"SELECT FCOUNT(*) FROM v WHERE class = '{cls}'"
    cache = SharedDetectionCache(capacity_bytes=512 << 20)
    engine = build_engine(
        num_frames, PacedDetector(seconds_per_frame), shared_cache=cache
    )
    cold_seconds, cold, _ = timed_execution(engine, query, parallelism=WORKERS)
    warm_seconds, warm, _ = timed_execution(engine, query, parallelism=WORKERS)
    cold_calls = cold.execution_ledger.detector_calls
    warm_calls = warm.execution_ledger.detector_calls
    return {
        "frames": num_frames,
        "cold_detector_calls": cold_calls,
        "warm_detector_calls": warm_calls,
        "warm_shared_cache_hits": warm.execution_ledger.shared_cache_hits,
        "call_reduction": cold_calls / max(1, warm_calls),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "values_equal": cold.value == warm.value,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()
    num_frames = args.frames or (800 if args.quick else 2400)
    seconds_per_frame = 0.0005 if args.quick else 0.001

    speedups = run_speedup_suite(num_frames, seconds_per_frame)
    speedups += run_gil_suite()
    cache = run_cache_suite(num_frames, seconds_per_frame)

    print_table(
        f"Parallel execution backends ({WORKERS} workers)",
        ["workload", "backend", "seq s", "par s", "speedup", "identical", "gated"],
        [
            [
                e["workload"],
                e["backend"],
                e["sequential_seconds"],
                e["parallel_seconds"],
                e["speedup"],
                e["identical"],
                e["gated"],
            ]
            for e in speedups
        ],
    )
    for e in speedups:
        if e["routed_decision"]:
            print(f"  routed {e['workload']}: {e['routed_decision']}")
    print_table(
        "Shared cross-query detection cache (cold vs warm)",
        ["cold calls", "warm calls", "reduction", "cold s", "warm s"],
        [
            [
                cache["cold_detector_calls"],
                cache["warm_detector_calls"],
                cache["call_reduction"],
                cache["cold_seconds"],
                cache["warm_seconds"],
            ]
        ],
    )

    report = {
        "scenario": SCENARIO,
        "workers": WORKERS,
        "frames": num_frames,
        "seconds_per_frame": seconds_per_frame,
        "gil_frames": GIL_FRAMES,
        "gil_micros_per_frame": GIL_MICROS_PER_FRAME,
        "speedup_suite": speedups,
        "shared_cache": cache,
    }
    atomic_write_text(REPO_ROOT / "BENCH_parallel.json", json.dumps(report, indent=2))

    failures = []
    for e in speedups:
        label = f"{e['workload']}[{e['backend']}]"
        if not e["identical"]:
            failures.append(f"{label}: parallel result != sequential")
        if e["gated"] == "speedup" and e["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{label}: speedup {e['speedup']:.2f}x "
                f"< {MIN_SPEEDUP}x at {WORKERS} workers"
            )
        if e["gated"] == "no_regression" and e["speedup"] < NO_REGRESSION:
            failures.append(
                f"{label}: hint-routed parallelism regressed to "
                f"{e['speedup']:.2f}x (the cost model should have declined)"
            )
        if e["gated"] == "gil_ceiling" and e["speedup"] > MAX_GIL_THREAD_SPEEDUP:
            failures.append(
                f"{label}: threads sped a GIL-bound detector up "
                f"{e['speedup']:.2f}x — the detector is not actually GIL-bound"
            )
    if not cache["values_equal"]:
        failures.append("shared cache: warm value != cold value")
    if cache["warm_detector_calls"] * MIN_CACHE_REDUCTION > cache["cold_detector_calls"]:
        failures.append(
            f"shared cache: only {cache['call_reduction']:.1f}x fewer detector "
            f"calls on the warm run (need >= {MIN_CACHE_REDUCTION}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
