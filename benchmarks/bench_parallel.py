"""Parallel execution harness: sharded prefetch speedup and shared-cache reuse.

Two claims of the parallel sharded execution engine are gated here:

1. **Wall-clock speedup.**  The perf-suite workloads (the four query classes
   over a fixed-seed scenario) run once sequentially and once at 4 workers,
   against a detector that carries a simulated per-frame inference latency —
   the ``time.sleep`` stands in for the GPU/RPC latency a real detector has,
   which is exactly the resource the shard workers overlap (the pure-Python
   simulated detector alone is GIL-bound and would show no thread speedup).
   The scan-bound workloads must come out >= 2x faster, with results verified
   bit-for-bit identical to the sequential run.

2. **Shared-cache detector reuse.**  The same query run cold and then warm
   through a shared cross-query cache must pay >= 5x fewer detector calls on
   the warm run (it pays zero: every frame is served from the cache).

Results are written to ``BENCH_parallel.json`` at the repo root.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick] [--frames N]

Exits non-zero when a speedup or cache assertion fails, or when a parallel
result deviates from the sequential one — which is what the CI perf smoke
job gates on.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.simulated import SimulatedDetector
from repro.parallel.cache import SharedDetectionCache
from repro.persist import atomic_write_text
from repro.video.scenarios import generate_scenario

from reporting import print_table

SCENARIO = "rialto"
WORKERS = 4

#: Queries over the scenario's primary class.  ``gate`` is the assertion the
#: CI job applies: the scan-bound workloads must come out >= 2x faster under
#: explicit parallelism ("speedup"), while the importance-ranked scrubbing
#: query routes its workers through session hints — which the default
#: routing declines for ranked scans — and must therefore *not regress*
#: ("no_regression"; it used to collapse to 0.44x when force-sharded).
WORKLOADS = [
    ("aggregate_scan", "SELECT FCOUNT(*) FROM v WHERE class = '{cls}'", "speedup"),
    ("selection", "SELECT * FROM v WHERE class = '{cls}'", "speedup"),
    ("exact", "SELECT * FROM v", "speedup"),
    (
        "scrubbing",
        "SELECT timestamp FROM v GROUP BY timestamp "
        "HAVING COUNT(class = '{cls}') >= 1 LIMIT 10 GAP 30",
        "no_regression",
    ),
]

MIN_SPEEDUP = 2.0
#: Hint-routed workloads may not run slower than sequential (small tolerance
#: for wall-clock noise on a ~0.2s query).
NO_REGRESSION = 0.85
MIN_CACHE_REDUCTION = 5.0


class PacedDetector(SimulatedDetector):
    """Mask R-CNN simulation with a simulated per-frame inference latency.

    The sleep models the time a real detector spends on the accelerator per
    frame — wall-clock the driver can overlap across shard workers, unlike
    the GIL-bound Python arithmetic of the noise model.
    """

    def __init__(self, seconds_per_frame: float) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame

    def detect(self, video, frame_index, ledger=None):
        time.sleep(self.seconds_per_frame)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


def build_engine(
    num_frames: int,
    seconds_per_frame: float,
    shared_cache: SharedDetectionCache | None = None,
) -> BlazeIt:
    engine = BlazeIt(
        detector=PacedDetector(seconds_per_frame),
        config=BlazeItConfig(seed=0),
        shared_cache=shared_cache,
    )
    engine.register_video("v", test_video=generate_scenario(SCENARIO, "test", num_frames))
    return engine


def fingerprint(result) -> tuple:
    out: tuple = (result.kind, result.method, result.detection_calls)
    if hasattr(result, "value"):
        out += (result.value,)
    if hasattr(result, "frames"):
        out += (tuple(result.frames), result.satisfied)
    if hasattr(result, "matched_frames"):
        out += (tuple(result.matched_frames),)
    if hasattr(result, "records"):
        out += (tuple((r.frame_index, r.object_class, r.trackid) for r in result.records),)
    return out


def primary_class(num_frames: int) -> str:
    video = generate_scenario(SCENARIO, "test", min(num_frames, 64))
    return video.object_class_names[0]


def timed_execution(
    engine: BlazeIt, query: str, parallelism: int, hint_routed: bool = False
):
    """Run one query, returning (wall seconds, result).

    ``hint_routed`` passes the worker count through session hints — the
    production default path, where plans may decline sharding — instead of
    the explicit per-call argument, which is always honoured as given.
    """
    from repro import QueryHints

    hints = QueryHints(parallelism=parallelism) if hint_routed else None
    with engine.session(hints=hints) as session:
        prepared = session.prepare(query)
        started = time.perf_counter()
        result = prepared.execute(
            rng=np.random.default_rng(1234),
            parallelism=None if hint_routed else parallelism,
        )
        return time.perf_counter() - started, result


def run_speedup_suite(num_frames: int, seconds_per_frame: float) -> list[dict]:
    cls = primary_class(num_frames)
    entries = []
    for name, template, gate in WORKLOADS:
        query = template.format(cls=cls)
        hint_routed = gate == "no_regression"
        engine = build_engine(num_frames, seconds_per_frame)
        sequential_seconds, sequential = timed_execution(engine, query, parallelism=1)
        parallel_seconds, parallel = timed_execution(
            engine, query, parallelism=WORKERS, hint_routed=hint_routed
        )
        entries.append(
            {
                "workload": name,
                "frames": num_frames,
                "workers": WORKERS,
                "hint_routed": hint_routed,
                "sequential_seconds": sequential_seconds,
                "parallel_seconds": parallel_seconds,
                "speedup": sequential_seconds / parallel_seconds,
                "identical": fingerprint(sequential) == fingerprint(parallel),
                "detector_calls": parallel.execution_ledger.detector_calls,
                "gated": gate,
            }
        )
    return entries


def run_cache_suite(num_frames: int, seconds_per_frame: float) -> dict:
    cls = primary_class(num_frames)
    query = f"SELECT FCOUNT(*) FROM v WHERE class = '{cls}'"
    cache = SharedDetectionCache(capacity_bytes=512 << 20)
    engine = build_engine(num_frames, seconds_per_frame, shared_cache=cache)
    cold_seconds, cold = timed_execution(engine, query, parallelism=WORKERS)
    warm_seconds, warm = timed_execution(engine, query, parallelism=WORKERS)
    cold_calls = cold.execution_ledger.detector_calls
    warm_calls = warm.execution_ledger.detector_calls
    return {
        "frames": num_frames,
        "cold_detector_calls": cold_calls,
        "warm_detector_calls": warm_calls,
        "warm_shared_cache_hits": warm.execution_ledger.shared_cache_hits,
        "call_reduction": cold_calls / max(1, warm_calls),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "values_equal": cold.value == warm.value,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()
    num_frames = args.frames or (800 if args.quick else 2400)
    seconds_per_frame = 0.0005 if args.quick else 0.001

    speedups = run_speedup_suite(num_frames, seconds_per_frame)
    cache = run_cache_suite(num_frames, seconds_per_frame)

    print_table(
        f"Parallel sharded execution ({WORKERS} workers, {num_frames} frames)",
        ["workload", "seq s", "par s", "speedup", "identical", "gated"],
        [
            [
                e["workload"],
                e["sequential_seconds"],
                e["parallel_seconds"],
                e["speedup"],
                e["identical"],
                e["gated"],
            ]
            for e in speedups
        ],
    )
    print_table(
        "Shared cross-query detection cache (cold vs warm)",
        ["cold calls", "warm calls", "reduction", "cold s", "warm s"],
        [
            [
                cache["cold_detector_calls"],
                cache["warm_detector_calls"],
                cache["call_reduction"],
                cache["cold_seconds"],
                cache["warm_seconds"],
            ]
        ],
    )

    report = {
        "scenario": SCENARIO,
        "workers": WORKERS,
        "frames": num_frames,
        "seconds_per_frame": seconds_per_frame,
        "speedup_suite": speedups,
        "shared_cache": cache,
    }
    atomic_write_text(REPO_ROOT / "BENCH_parallel.json", json.dumps(report, indent=2))

    failures = []
    for entry in speedups:
        if not entry["identical"]:
            failures.append(f"{entry['workload']}: parallel result != sequential")
        if entry["gated"] == "speedup" and entry["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{entry['workload']}: speedup {entry['speedup']:.2f}x "
                f"< {MIN_SPEEDUP}x at {WORKERS} workers"
            )
        if entry["gated"] == "no_regression" and entry["speedup"] < NO_REGRESSION:
            failures.append(
                f"{entry['workload']}: hint-routed parallelism regressed to "
                f"{entry['speedup']:.2f}x (routing should have declined sharding)"
            )
    if not cache["values_equal"]:
        failures.append("shared cache: warm value != cold value")
    if cache["warm_detector_calls"] * MIN_CACHE_REDUCTION > cache["cold_detector_calls"]:
        failures.append(
            f"shared cache: only {cache['call_reduction']:.1f}x fewer detector "
            f"calls on the warm run (need >= {MIN_CACHE_REDUCTION}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
