"""Streaming latency: time-to-first-hit vs. full execution (fig6-style scrubbing).

The point of the streaming protocol for exploratory scrubbing: a user watching
the stream sees the first verified clip after a small prefix of the ranked
scan, while the blocking API returns nothing until every requested clip is
found.  Two latency measures per video:

* **simulated seconds to first hit** — a streamed run with
  ``StopConditions(limit=1)``: execution stops (and the ledger closes) the
  moment the first verified frame is emitted;
* **wall milliseconds to first event** — real time from opening the stream of
  the full query until its first ``ScrubbingHit`` arrives.

Both are compared against the full ``LIMIT 10`` execution.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.reporting import print_table, record, speedup_over
from repro.api import ScrubbingHit, StopConditions
from repro.workloads.queries import SCRUBBING_QUERIES, scrubbing_query

LIMIT = 10
STREAMING_VIDEOS = list(SCRUBBING_QUERIES)


def _run_video(bench_env, name: str) -> list[list]:
    bundle = bench_env.get(name)
    object_class = SCRUBBING_QUERIES[name].object_class
    threshold = bench_env.rare_event_threshold(name, object_class, limit=LIMIT)
    query = scrubbing_query(name, object_class, threshold, limit=LIMIT, gap=0)

    session = bundle.fresh_session(bench_env.default_config())
    full = session.execute(query)

    # Simulated latency: stop conditions end the run at the first verified hit.
    first_hit = session.execute(query, stop=StopConditions(limit=1))

    # Wall-clock latency: iterate the full stream until the first hit event.
    started = time.perf_counter()
    stream = session.stream(query)
    wall_to_first_ms = None
    first_streamed_frame = None
    for event in stream:
        if isinstance(event, ScrubbingHit) and wall_to_first_ms is None:
            wall_to_first_ms = (time.perf_counter() - started) * 1000.0
            first_streamed_frame = event.frame_index
            stream.cancel()
    wall_full_ms = (time.perf_counter() - started) * 1000.0

    rows = []
    for label, result in (("full LIMIT 10", full), ("first hit (limit=1)", first_hit)):
        rows.append(
            [
                name,
                f"{object_class}>={threshold}",
                label,
                result.runtime_seconds,
                result.execution_ledger.detector_calls,
                len(result.frames),
                speedup_over(full.runtime_seconds, result.runtime_seconds),
            ]
        )
        record(
            "streaming_latency",
            {
                "video": name,
                "predicate": f"{object_class}>={threshold}",
                "variant": label,
                "runtime_s": result.runtime_seconds,
                "detector_calls": result.execution_ledger.detector_calls,
                "found": len(result.frames),
                "speedup_vs_full": speedup_over(
                    full.runtime_seconds, result.runtime_seconds
                ),
            },
        )
    record(
        "streaming_latency_wall",
        {
            "video": name,
            "wall_ms_to_first_event": wall_to_first_ms,
            "wall_ms_cancelled_stream": wall_full_ms,
            "first_streamed_frame": first_streamed_frame,
        },
    )
    rows.append(
        [
            name,
            f"{object_class}>={threshold}",
            "wall ms to first event",
            (wall_to_first_ms or 0.0) / 1000.0,
            0,
            1 if first_streamed_frame is not None else 0,
            0.0,
        ]
    )
    return rows


@pytest.mark.parametrize("video", STREAMING_VIDEOS)
def test_streaming_time_to_first_hit(bench_env, benchmark, video):
    rows = benchmark.pedantic(lambda: _run_video(bench_env, video), rounds=1, iterations=1)
    print_table(
        f"Streaming latency ({video}): time to first hit vs full LIMIT {LIMIT}",
        ["video", "predicate", "variant", "runtime (s)", "det calls", "found", "speedup"],
        rows,
    )
    by_variant = {row[2]: row for row in rows}
    full = by_variant["full LIMIT 10"]
    first = by_variant["first hit (limit=1)"]
    # First-hit latency is the streaming payoff: strictly fewer detector
    # calls and no more simulated runtime than the full scrub.
    assert first[5] == 1
    assert first[4] < full[4]
    assert first[3] <= full[3]
    # The wall-clock first event arrived (the stream really is incremental).
    assert by_variant["wall ms to first event"][5] == 1
